//! Static audit of [`LoweredOp`]s — the pipeline IR — before execution.
//!
//! A lowering bug (a read landing in the wrong scratch cell, a write
//! sourcing a cell nothing produced, a plan compiled for the wrong scratch
//! shape) executes without any error: the backend happily stores garbage.
//! [`audit_lowered`] catches those classes statically, by walking the op's
//! reads → plan → writes in order and tracking which scratch cells are
//! *defined* at each point. [`predicted_request_set`] derives the
//! [`RequestSet`] an op must commit, so the pipeline can assert that
//! accounting agrees with execution ([`crate::pipeline::IoPipeline`] does
//! both under `debug_assertions`).

use std::fmt;

use raid_core::io::RequestSet;
use raid_core::Cell;

use crate::pipeline::LoweredOp;

/// A statically-detected defect in a [`LoweredOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// A read or write names a scratch cell outside the scratch grid.
    CellOutOfScratch {
        /// The offending scratch cell.
        cell: Cell,
        /// Scratch shape `(rows, cols)`.
        scratch: (usize, usize),
    },
    /// A read or write addresses a disk the backend does not have.
    DiskOutOfRange {
        /// The offending address.
        addr: (usize, usize),
        /// Number of disks.
        disks: usize,
    },
    /// Two reads land in the same scratch cell — the second silently
    /// clobbers the first.
    DuplicateReadDest {
        /// The doubly-filled cell.
        cell: Cell,
    },
    /// Two writes in one op target the same disk element — the op's effect
    /// depends on write order.
    DuplicateWriteAddr {
        /// The doubly-written address.
        addr: (usize, usize),
    },
    /// The op's plan was compiled for a different grid than the scratch.
    PlanShapeMismatch {
        /// Plan shape `(rows, cols)`.
        plan: (usize, usize),
        /// Scratch shape `(rows, cols)`.
        scratch: (usize, usize),
    },
    /// A plan op reads a scratch cell that no read, preset cell, or
    /// earlier plan op defined — the XOR consumes stale scratch.
    UnsourcedXor {
        /// The plan op's target.
        target: Cell,
        /// The undefined source.
        source: Cell,
    },
    /// A plan op involving an optimizer scratch temp reads a slot nothing
    /// defined (temps live past the grid, so the offender cannot be named
    /// as a [`Cell`]).
    UnsourcedTemp {
        /// Human-readable description naming the op target and the slot.
        detail: String,
    },
    /// A write stores a scratch cell that nothing defined.
    UnsourcedWrite {
        /// The undefined cell being stored.
        cell: Cell,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::CellOutOfScratch { cell, scratch } => {
                write!(f, "{cell} lies outside the {}×{} scratch", scratch.0, scratch.1)
            }
            AuditError::DiskOutOfRange { addr, disks } => write!(
                f,
                "address disk {} element {} exceeds the {disks}-disk backend",
                addr.0, addr.1
            ),
            AuditError::DuplicateReadDest { cell } => {
                write!(f, "two reads land in scratch cell {cell}")
            }
            AuditError::DuplicateWriteAddr { addr } => {
                write!(f, "two writes target disk {} element {}", addr.0, addr.1)
            }
            AuditError::PlanShapeMismatch { plan, scratch } => write!(
                f,
                "plan addresses a {}×{} grid but the scratch is {}×{}",
                plan.0, plan.1, scratch.0, scratch.1
            ),
            AuditError::UnsourcedXor { target, source } => write!(
                f,
                "plan op for {target} reads {source}, which no read or earlier op defines"
            ),
            AuditError::UnsourcedTemp { detail } => write!(f, "{detail}"),
            AuditError::UnsourcedWrite { cell } => {
                write!(f, "write stores {cell}, which no read or plan op defines")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Statically audits one [`LoweredOp`] against a `scratch_rows ×
/// scratch_cols` scratch and a `disks`-wide backend.
///
/// `preset` lists scratch cells the caller filled *before* execution (the
/// RMW double-buffer's fresh data, a degraded write's payload). With
/// `Some(_)`, read-set sufficiency is checked: every cell a plan op or a
/// write consumes must come from a read, a preset cell, or an earlier plan
/// op. With `None`, the caller makes no claim about pre-filled scratch and
/// only the structural checks run.
///
/// # Errors
///
/// Returns the first [`AuditError`] found, in read → plan → write order.
pub fn audit_lowered(
    op: &LoweredOp,
    scratch_rows: usize,
    scratch_cols: usize,
    disks: usize,
    preset: Option<&[Cell]>,
) -> Result<(), AuditError> {
    let scratch = (scratch_rows, scratch_cols);
    let in_scratch = |c: Cell| c.row < scratch_rows && c.col < scratch_cols;
    let ncells = scratch_rows * scratch_cols;

    let mut defined = vec![false; ncells];
    if let Some(preset) = preset {
        for &c in preset {
            if !in_scratch(c) {
                return Err(AuditError::CellOutOfScratch { cell: c, scratch });
            }
            defined[c.index(scratch_cols)] = true;
        }
    }

    let mut read_dest = vec![false; ncells];
    for &(cell, addr) in &op.reads {
        if !in_scratch(cell) {
            return Err(AuditError::CellOutOfScratch { cell, scratch });
        }
        if addr.disk >= disks {
            return Err(AuditError::DiskOutOfRange { addr: (addr.disk, addr.index), disks });
        }
        let i = cell.index(scratch_cols);
        if read_dest[i] {
            return Err(AuditError::DuplicateReadDest { cell });
        }
        read_dest[i] = true;
        defined[i] = true;
    }

    if let Some(plan) = &op.plan {
        if plan.rows() != scratch_rows || plan.cols() != scratch_cols {
            return Err(AuditError::PlanShapeMismatch {
                plan: (plan.rows(), plan.cols()),
                scratch,
            });
        }
        // Optimized plans may carry scratch temps past the grid; extend
        // the defined-tracking to cover them (plan flat indices match
        // `Cell::index(scratch_cols)` for grid slots, shape checked above).
        defined.resize(ncells + plan.num_temps(), false);
        for view in plan.step_views() {
            if preset.is_some() {
                for &s in view.srcs {
                    if !defined[s as usize] {
                        use raid_core::xplan::PlanCell;
                        return Err(match (plan.plan_cell(view.dst), plan.plan_cell(s)) {
                            (PlanCell::Grid(target), PlanCell::Grid(source)) => {
                                AuditError::UnsourcedXor { target, source }
                            }
                            (d, src) => AuditError::UnsourcedTemp {
                                detail: format!(
                                    "plan op for {d} reads {src}, which no read or earlier op defines"
                                ),
                            },
                        });
                    }
                }
            }
            defined[view.dst as usize] = true;
        }
    }

    let mut written = std::collections::HashSet::new();
    for &(cell, addr) in op.data_writes.iter().chain(&op.parity_writes) {
        if !in_scratch(cell) {
            return Err(AuditError::CellOutOfScratch { cell, scratch });
        }
        if addr.disk >= disks {
            return Err(AuditError::DiskOutOfRange { addr: (addr.disk, addr.index), disks });
        }
        if !written.insert((addr.disk, addr.index)) {
            return Err(AuditError::DuplicateWriteAddr { addr: (addr.disk, addr.index) });
        }
        if preset.is_some() && !defined[cell.index(scratch_cols)] {
            return Err(AuditError::UnsourcedWrite { cell });
        }
    }
    Ok(())
}

/// The [`RequestSet`] executing `op` must commit — derived from the op
/// alone, without touching any backend. The pipeline debug-asserts its
/// committed set equals this prediction, pinning ledger accounting to the
/// IR rather than to execution side effects.
pub fn predicted_request_set(op: &LoweredOp, disks: usize) -> RequestSet {
    let mut rs = RequestSet::new(disks);
    for &(_, addr) in &op.reads {
        rs.add_read(addr.disk);
    }
    for &(_, addr) in &op.data_writes {
        rs.add_data_write(addr.disk);
    }
    for &(_, addr) in &op.parity_writes {
        rs.add_parity_write(addr.disk);
    }
    rs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DiskAddr;
    use raid_core::XorPlan;

    fn addr(disk: usize, index: usize) -> DiskAddr {
        DiskAddr { disk, index }
    }

    fn parity_op() -> LoweredOp {
        let c = Cell::new;
        LoweredOp {
            reads: vec![(c(0, 0), addr(0, 0)), (c(0, 1), addr(1, 0))],
            plan: Some(XorPlan::from_steps(1, 3, [(c(0, 2), [c(0, 0), c(0, 1)].as_slice())])),
            data_writes: vec![],
            parity_writes: vec![(c(0, 2), addr(2, 0))],
        }
    }

    #[test]
    fn well_formed_op_passes_with_and_without_preset() {
        let op = parity_op();
        audit_lowered(&op, 1, 3, 3, None).unwrap();
        audit_lowered(&op, 1, 3, 3, Some(&[])).unwrap();
    }

    #[test]
    fn unsourced_xor_caught_only_with_preset_claim() {
        let mut op = parity_op();
        op.reads.pop(); // (0,1) now undefined
        audit_lowered(&op, 1, 3, 3, None).unwrap();
        let err = audit_lowered(&op, 1, 3, 3, Some(&[])).unwrap_err();
        assert!(matches!(err, AuditError::UnsourcedXor { .. }), "{err}");
        // Declaring the cell preset makes the same op legal.
        audit_lowered(&op, 1, 3, 3, Some(&[Cell::new(0, 1)])).unwrap();
    }

    #[test]
    fn unsourced_write_caught() {
        let c = Cell::new;
        let op = LoweredOp {
            data_writes: vec![(c(0, 0), addr(0, 0))],
            ..Default::default()
        };
        assert!(matches!(
            audit_lowered(&op, 1, 1, 1, Some(&[])),
            Err(AuditError::UnsourcedWrite { .. })
        ));
    }

    #[test]
    fn structural_defects_caught() {
        let c = Cell::new;
        let out = LoweredOp::read_only(vec![(c(5, 0), addr(0, 0))]);
        assert!(matches!(
            audit_lowered(&out, 1, 3, 3, None),
            Err(AuditError::CellOutOfScratch { .. })
        ));
        let bad_disk = LoweredOp::read_only(vec![(c(0, 0), addr(9, 0))]);
        assert!(matches!(
            audit_lowered(&bad_disk, 1, 3, 3, None),
            Err(AuditError::DiskOutOfRange { .. })
        ));
        let dup_read =
            LoweredOp::read_only(vec![(c(0, 0), addr(0, 0)), (c(0, 0), addr(1, 0))]);
        assert!(matches!(
            audit_lowered(&dup_read, 1, 3, 3, None),
            Err(AuditError::DuplicateReadDest { .. })
        ));
        let mut dup_write = parity_op();
        dup_write.data_writes.push((c(0, 0), addr(2, 0)));
        assert!(matches!(
            audit_lowered(&dup_write, 1, 3, 3, None),
            Err(AuditError::DuplicateWriteAddr { .. })
        ));
        let mut bad_plan = parity_op();
        bad_plan.plan = Some(XorPlan::from_steps(2, 2, []));
        assert!(matches!(
            audit_lowered(&bad_plan, 1, 3, 3, None),
            Err(AuditError::PlanShapeMismatch { .. })
        ));
    }

    #[test]
    fn predicted_request_set_matches_shape() {
        let op = parity_op();
        let rs = predicted_request_set(&op, 3);
        assert_eq!(rs.total_reads(), 2);
        assert_eq!(rs.parity_writes(), 1);
        assert_eq!(rs.data_writes(), 0);
    }
}
