//! Array reliability: mean time to data loss (MTTDL) under the classical
//! Markov model, driven by the rebuild times of [`crate::mttr`].
//!
//! RAID-6 loses data when a third disk dies while two are rebuilding. With
//! per-disk mean time to failure `MTTF` and mean repair times `R1` (one
//! disk down) and `R2` (two disks down), the standard birth–death chain
//! gives
//!
//! ```text
//! MTTDL ≈ MTTF³ / ( n · (n−1) · (n−2) · R1 · R2 )
//! ```
//!
//! The model makes the usual simplifications (exponential lifetimes,
//! independent failures, repair times ≪ MTTF); its value here is
//! *comparative*: a code that shortens rebuilds — the HV paper's central
//! reliability argument — multiplies MTTDL by the same factor for every
//! array size, and this module quantifies that.

use disk_sim::DiskProfile;
use raid_core::ArrayCode;

use crate::mttr::estimate_rebuild;

/// Hours in a simulated millisecond.
const MS_TO_HOURS: f64 = 1.0 / 3_600_000.0;

/// MTTDL estimate and its inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MttdlEstimate {
    /// Disks in the array.
    pub disks: usize,
    /// Single-disk rebuild time, hours.
    pub rebuild_one_h: f64,
    /// Double-disk rebuild time, hours.
    pub rebuild_two_h: f64,
    /// Mean time to data loss, hours.
    pub mttdl_h: f64,
}

/// Estimates MTTDL for `stripes` stripes of `code` with per-disk
/// `mttf_hours` (disk datasheets quote 1–2 million hours).
///
/// # Panics
///
/// Panics if `mttf_hours` is not positive, the array has fewer than three
/// disks, or `stripes` is zero.
pub fn estimate_mttdl(
    code: &dyn ArrayCode,
    stripes: usize,
    profile: DiskProfile,
    mttf_hours: f64,
) -> MttdlEstimate {
    assert!(mttf_hours > 0.0, "MTTF must be positive");
    let n = code.layout().cols();
    assert!(n >= 3, "MTTDL model needs at least three disks");
    let rebuild = estimate_rebuild(code, stripes, profile);
    let r1 = rebuild.single_ms * MS_TO_HOURS;
    let r2 = rebuild.double_ms * MS_TO_HOURS;
    let nf = n as f64;
    let mttdl = mttf_hours.powi(3) / (nf * (nf - 1.0) * (nf - 2.0) * r1 * r2);
    MttdlEstimate { disks: n, rebuild_one_h: r1, rebuild_two_h: r2, mttdl_h: mttdl }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_code::HvCode;
    use raid_baselines::HdpCode;

    #[test]
    fn faster_rebuilds_mean_longer_mttdl() {
        // HV vs HDP at the same disk count (both p − 1): HV's shorter
        // chains and 4-way recovery parallelism must translate into a
        // higher MTTDL.
        let profile = DiskProfile::savvio_10k();
        let hv = estimate_mttdl(&HvCode::new(13).unwrap(), 64, profile, 1_000_000.0);
        let hdp = estimate_mttdl(&HdpCode::new(13).unwrap(), 64, profile, 1_000_000.0);
        assert_eq!(hv.disks, hdp.disks);
        assert!(hv.rebuild_two_h < hdp.rebuild_two_h);
        assert!(hv.mttdl_h > hdp.mttdl_h);
    }

    #[test]
    fn mttdl_scales_inversely_with_rebuild_time() {
        let profile = DiskProfile::savvio_10k();
        let small = estimate_mttdl(&HvCode::new(7).unwrap(), 8, profile, 1_000_000.0);
        let large = estimate_mttdl(&HvCode::new(7).unwrap(), 80, profile, 1_000_000.0);
        // 10× the data → ~10× both rebuild times → ~100× lower MTTDL.
        let ratio = small.mttdl_h / large.mttdl_h;
        assert!((ratio - 100.0).abs() < 5.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "MTTF must be positive")]
    fn bad_mttf_rejected() {
        estimate_mttdl(
            &HvCode::new(7).unwrap(),
            1,
            DiskProfile::savvio_10k(),
            0.0,
        );
    }
}
