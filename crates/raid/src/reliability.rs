//! Array reliability: mean time to data loss (MTTDL) under the classical
//! Markov model, driven by the rebuild times of [`crate::mttr`].
//!
//! RAID-6 loses data when a third disk dies while two are rebuilding. With
//! per-disk mean time to failure `MTTF` and mean repair times `R1` (one
//! disk down) and `R2` (two disks down), the standard birth–death chain
//! gives
//!
//! ```text
//! MTTDL ≈ MTTF³ / ( n · (n−1) · (n−2) · R1 · R2 )
//! ```
//!
//! The model makes the usual simplifications (exponential lifetimes,
//! independent failures, repair times ≪ MTTF); its value here is
//! *comparative*: a code that shortens rebuilds — the HV paper's central
//! reliability argument — multiplies MTTDL by the same factor for every
//! array size, and this module quantifies that.

use disk_sim::DiskProfile;
use raid_core::ArrayCode;

use crate::mttr::estimate_rebuild;

/// Hours in a simulated millisecond.
const MS_TO_HOURS: f64 = 1.0 / 3_600_000.0;

/// MTTDL estimate and its inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MttdlEstimate {
    /// Disks in the array.
    pub disks: usize,
    /// Single-disk rebuild time, hours.
    pub rebuild_one_h: f64,
    /// Double-disk rebuild time, hours.
    pub rebuild_two_h: f64,
    /// Mean time to data loss, hours.
    pub mttdl_h: f64,
}

/// Estimates MTTDL for `stripes` stripes of `code` with per-disk
/// `mttf_hours` (disk datasheets quote 1–2 million hours).
///
/// # Panics
///
/// Panics if `mttf_hours` is not positive, the array has fewer than three
/// disks, or `stripes` is zero.
pub fn estimate_mttdl(
    code: &dyn ArrayCode,
    stripes: usize,
    profile: DiskProfile,
    mttf_hours: f64,
) -> MttdlEstimate {
    assert!(mttf_hours > 0.0, "MTTF must be positive");
    let n = code.layout().cols();
    assert!(n >= 3, "MTTDL model needs at least three disks");
    let rebuild = estimate_rebuild(code, stripes, profile);
    let r1 = rebuild.single_ms * MS_TO_HOURS;
    let r2 = rebuild.double_ms * MS_TO_HOURS;
    let nf = n as f64;
    let mttdl = mttf_hours.powi(3) / (nf * (nf - 1.0) * (nf - 2.0) * r1 * r2);
    MttdlEstimate { disks: n, rebuild_one_h: r1, rebuild_two_h: r2, mttdl_h: mttdl }
}

/// Inputs for [`mttdl_from_inputs`]: the same Markov chain, but with the
/// repair windows supplied by the caller — *measured* rebuild durations
/// from a fleet run, throttled closed forms from
/// [`crate::mttr::estimate_rebuild_throttled`], or anything else —
/// instead of the closed-form [`estimate_rebuild`] figures, plus an
/// explicit hot-spare pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MttdlInputs {
    /// Disks in the array (≥ 3).
    pub disks: usize,
    /// Per-disk mean time to failure, hours.
    pub mttf_hours: f64,
    /// Single-disk rebuild duration, hours (excluding spare wait).
    pub rebuild_one_h: f64,
    /// Double-disk rebuild duration, hours (excluding spare wait).
    pub rebuild_two_h: f64,
    /// Hot spares stocked per array.
    pub spares: usize,
    /// Time to restock one spare after it is consumed, hours. With zero
    /// spares every repair waits the full restock delay.
    pub spare_replenish_h: f64,
}

/// MTTDL from caller-supplied repair windows and a spare-pool model.
///
/// The repair window the Markov chain sees is rebuild time plus the
/// expected wait for a spare, `replenish / (spares + 1)` — zero spares
/// wait the whole restock delay, each stocked spare cuts the expected
/// wait (the pool almost always has one ready). MTTDL is therefore
/// monotone increasing in spare count and rebuild rate, and monotone
/// decreasing in disk count — invariants the property suite pins.
///
/// # Panics
///
/// Panics if `mttf_hours` or either rebuild window is not positive, the
/// replenish delay is negative, or the array has fewer than three disks.
pub fn mttdl_from_inputs(inputs: &MttdlInputs) -> MttdlEstimate {
    assert!(inputs.mttf_hours > 0.0, "MTTF must be positive");
    assert!(inputs.disks >= 3, "MTTDL model needs at least three disks");
    assert!(
        inputs.rebuild_one_h > 0.0 && inputs.rebuild_two_h > 0.0,
        "rebuild windows must be positive"
    );
    assert!(inputs.spare_replenish_h >= 0.0, "replenish delay cannot be negative");
    let wait = inputs.spare_replenish_h / (inputs.spares as f64 + 1.0);
    let r1 = inputs.rebuild_one_h + wait;
    let r2 = inputs.rebuild_two_h + wait;
    let nf = inputs.disks as f64;
    let mttdl = inputs.mttf_hours.powi(3) / (nf * (nf - 1.0) * (nf - 2.0) * r1 * r2);
    MttdlEstimate { disks: inputs.disks, rebuild_one_h: r1, rebuild_two_h: r2, mttdl_h: mttdl }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_code::HvCode;
    use raid_baselines::HdpCode;

    #[test]
    fn faster_rebuilds_mean_longer_mttdl() {
        // HV vs HDP at the same disk count (both p − 1): HV's shorter
        // chains and 4-way recovery parallelism must translate into a
        // higher MTTDL.
        let profile = DiskProfile::savvio_10k();
        let hv = estimate_mttdl(&HvCode::new(13).unwrap(), 64, profile, 1_000_000.0);
        let hdp = estimate_mttdl(&HdpCode::new(13).unwrap(), 64, profile, 1_000_000.0);
        assert_eq!(hv.disks, hdp.disks);
        assert!(hv.rebuild_two_h < hdp.rebuild_two_h);
        assert!(hv.mttdl_h > hdp.mttdl_h);
    }

    #[test]
    fn mttdl_scales_inversely_with_rebuild_time() {
        let profile = DiskProfile::savvio_10k();
        let small = estimate_mttdl(&HvCode::new(7).unwrap(), 8, profile, 1_000_000.0);
        let large = estimate_mttdl(&HvCode::new(7).unwrap(), 80, profile, 1_000_000.0);
        // 10× the data → ~10× both rebuild times → ~100× lower MTTDL.
        let ratio = small.mttdl_h / large.mttdl_h;
        assert!((ratio - 100.0).abs() < 5.0, "ratio {ratio}");
    }

    #[test]
    fn measured_inputs_reduce_to_the_closed_form_without_spare_wait() {
        let profile = DiskProfile::savvio_10k();
        let code = HvCode::new(7).unwrap();
        let analytic = estimate_mttdl(&code, 8, profile, 1_000_000.0);
        // Feeding the closed-form windows back through the generic model
        // with an instant spare pool must reproduce it exactly.
        let measured = mttdl_from_inputs(&MttdlInputs {
            disks: analytic.disks,
            mttf_hours: 1_000_000.0,
            rebuild_one_h: analytic.rebuild_one_h,
            rebuild_two_h: analytic.rebuild_two_h,
            spares: 0,
            spare_replenish_h: 0.0,
        });
        assert_eq!(measured, analytic);
    }

    #[test]
    fn spare_wait_widens_the_exposure_window() {
        let base = MttdlInputs {
            disks: 6,
            mttf_hours: 1_000_000.0,
            rebuild_one_h: 2.0,
            rebuild_two_h: 5.0,
            spares: 0,
            spare_replenish_h: 24.0,
        };
        let none = mttdl_from_inputs(&base);
        let one = mttdl_from_inputs(&MttdlInputs { spares: 1, ..base });
        let many = mttdl_from_inputs(&MttdlInputs { spares: 8, ..base });
        assert!(none.mttdl_h < one.mttdl_h && one.mttdl_h < many.mttdl_h);
        // Zero spares wait the full restock delay.
        assert!((none.rebuild_one_h - 26.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "MTTF must be positive")]
    fn bad_mttf_rejected() {
        estimate_mttdl(
            &HvCode::new(7).unwrap(),
            1,
            DiskProfile::savvio_10k(),
            0.0,
        );
    }
}
