//! Randomized fault/crash campaigns against a live volume.
//!
//! The self-healing machinery ([`crate::health`], the journaled write
//! path, the checkpointed background rebuild) is only trustworthy if it
//! survives faults it did not choose. This module is the adversary: a
//! seeded, fully deterministic campaign that interleaves writes, degraded
//! reads, scrubs and rebuilds with injected faults from the whole
//! [`disk_sim::ErrorClass`] taxonomy — transient read glitches, latent
//! sectors, torn writes, dead disks (never more than RAID-6's two at
//! once) — and, for file-backed volumes, a *crash sweep* that kills the
//! simulated process at every single operation boundary of a
//! multi-element write and of a rebuild, reopens the directory, and
//! demands that journal recovery and the rebuild checkpoint leave the
//! array consistent.
//!
//! Every episode is verified against a shadow model (the bytes a perfect
//! volume would hold) plus [`raid_core::io::IoLedger`] accounting
//! invariants. A failure reports the seed and backend so the exact
//! campaign replays with `hvraid chaos --seed N`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use raid_core::ArrayCode;

use crate::backend::{
    DiskBackend, Fault, FaultyBackend, FileBackend, JournalRecovery, MemBackend,
};
use crate::cache::CacheConfig;
use crate::volume::{RaidVolume, VolumeError};

// ---------------------------------------------------------------------------
// Deterministic PRNG (splitmix64) — no external dependency, identical
// sequences on every platform, so a seed alone reproduces a campaign.
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn byte(&mut self) -> u8 {
        (self.next_u64() >> 32) as u8
    }

    fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Config / report / failure
// ---------------------------------------------------------------------------

/// Parameters of a chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed; every episode derives its own stream from it.
    pub seed: u64,
    /// Episodes to run per backend.
    pub episodes: usize,
    /// Randomized steps per episode.
    pub steps_per_episode: usize,
    /// Stripes per volume.
    pub stripes: usize,
    /// Element size in bytes.
    pub element_size: usize,
    /// Hot spares stocked per episode (drives auto-rebuild).
    pub spares: usize,
    /// Directory for file-backed episodes and crash sweeps; `None` runs
    /// the in-memory backend only.
    pub dir: Option<PathBuf>,
    /// Run the crash-at-every-op sweeps (file volumes only).
    pub crash_sweeps: bool,
    /// Run the episodes over the write-back stripe cache (with a small
    /// budget so the flush/eviction policy is exercised), and add the
    /// crash-with-dirty-cache sweep proving coalesced flushes are atomic.
    pub cache: bool,
    /// Worker threads for partitioned execution. Above 1 the volume is
    /// pinned to that many stripe partitions, episodes mix targeted
    /// [`RaidVolume::flush_partition`] barriers in with full flushes, and
    /// each episode ends with a partitioned `encode_all` whose
    /// shard-merged receipt must leave the shadow model and parity
    /// invariants intact.
    pub threads: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC0FFEE,
            episodes: 100,
            steps_per_episode: 12,
            stripes: 4,
            element_size: 16,
            spares: 2,
            dir: None,
            crash_sweeps: true,
            cache: true,
            threads: 1,
        }
    }
}

/// What a completed campaign did — every counter is deterministic in the
/// seed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Episodes completed (summed over backends).
    pub episodes: usize,
    /// Randomized steps executed.
    pub steps: u64,
    /// Successful writes.
    pub writes: u64,
    /// Successful reads (healthy array).
    pub reads: u64,
    /// Successful reads served while degraded.
    pub degraded_reads: u64,
    /// Scrub passes completed.
    pub scrubs: u64,
    /// Foreground rebuilds completed.
    pub rebuilds: u64,
    /// Background `maintain` pump calls.
    pub maintain_calls: u64,
    /// Dead-disk faults injected (incl. explicit `fail_disk`).
    pub faults_dead: u64,
    /// Transient read faults injected.
    pub faults_transient: u64,
    /// Latent-sector faults injected.
    pub faults_latent: u64,
    /// Torn-write faults injected.
    pub faults_torn: u64,
    /// Crash points exercised by the sweeps.
    pub crash_points: u64,
    /// Reopens where the undo journal rolled a torn write back.
    pub journal_rollbacks: u64,
    /// Reopens that resumed a rebuild from a checkpoint past stripe 0.
    pub resumed_rebuilds: u64,
    /// Coalesced stripe flushes committed by the write-back cache.
    pub cache_flushes: u64,
    /// Crash points exercised with dirty cached stripes mid-flush.
    pub dirty_cache_crash_points: u64,
    /// End-of-episode full verifications that passed.
    pub verifications: u64,
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos: {} episodes, {} steps, {} verifications — all consistent",
            self.episodes, self.steps, self.verifications
        )?;
        writeln!(
            f,
            "  ops: {} writes, {} reads ({} degraded), {} scrubs, {} rebuilds, {} maintain calls",
            self.writes,
            self.reads,
            self.degraded_reads,
            self.scrubs,
            self.rebuilds,
            self.maintain_calls
        )?;
        writeln!(
            f,
            "  faults: {} dead, {} transient, {} latent, {} torn",
            self.faults_dead, self.faults_transient, self.faults_latent, self.faults_torn
        )?;
        writeln!(
            f,
            "  crashes: {} points, {} journal rollbacks, {} checkpoint resumes",
            self.crash_points, self.journal_rollbacks, self.resumed_rebuilds
        )?;
        write!(
            f,
            "  cache: {} coalesced flushes, {} dirty-cache crash points",
            self.cache_flushes, self.dirty_cache_crash_points
        )
    }
}

/// An integrity violation found by a campaign. Carries everything needed
/// to reproduce: the master seed, the backend, and the phase.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The campaign's master seed.
    pub seed: u64,
    /// Backend kind the failing phase ran on (`"mem"`/`"file"`).
    pub backend: &'static str,
    /// Which phase failed (`"episode 17"`, `"crash-write sweep"`, …).
    pub phase: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chaos integrity failure [{} backend, {}]: {}; reproduce with \
             `hvraid chaos --seed {}`",
            self.backend, self.phase, self.detail, self.seed
        )
    }
}

impl std::error::Error for ChaosFailure {}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

/// Runs the full campaign for `code`: `episodes` randomized episodes on
/// the in-memory backend, the same again on a file backend when
/// [`ChaosConfig::dir`] is set, plus the crash sweeps.
///
/// # Errors
///
/// Returns the first [`ChaosFailure`] — an integrity violation, never a
/// tolerated fault.
pub fn run(code: &Arc<dyn ArrayCode>, cfg: &ChaosConfig) -> Result<ChaosReport, ChaosFailure> {
    let mut report = ChaosReport::default();
    for ep in 0..cfg.episodes {
        run_episode(code, cfg, ep, None, &mut report)?;
    }
    if let Some(dir) = &cfg.dir {
        for ep in 0..cfg.episodes {
            run_episode(code, cfg, ep, Some(dir), &mut report)?;
        }
        if cfg.crash_sweeps {
            crash_write_sweep(code, cfg, dir, &mut report)?;
            crash_rebuild_sweep(code, cfg, dir, &mut report)?;
            if cfg.cache {
                crash_dirty_cache_sweep(code, cfg, dir, &mut report)?;
            }
        }
    }
    Ok(report)
}

/// Seed for one episode's stream: decorrelated from neighbors and from
/// the other backend's episode of the same index.
fn episode_seed(master: u64, ep: usize, file_backed: bool) -> u64 {
    master
        .wrapping_add((ep as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(u64::from(file_backed) << 63)
}

struct Episode<'a> {
    cfg: &'a ChaosConfig,
    backend: &'static str,
    phase: String,
}

impl Episode<'_> {
    fn fail(&self, detail: impl Into<String>) -> ChaosFailure {
        ChaosFailure {
            seed: self.cfg.seed,
            backend: self.backend,
            phase: self.phase.clone(),
            detail: detail.into(),
        }
    }

    fn check<T>(&self, r: Result<T, VolumeError>, what: &str) -> Result<T, ChaosFailure> {
        r.map_err(|e| self.fail(format!("{what}: {e}")))
    }
}

fn run_episode(
    code: &Arc<dyn ArrayCode>,
    cfg: &ChaosConfig,
    ep: usize,
    dir: Option<&Path>,
    report: &mut ChaosReport,
) -> Result<(), ChaosFailure> {
    let ctx = Episode {
        cfg,
        backend: if dir.is_some() { "file" } else { "mem" },
        phase: format!("episode {ep}"),
    };
    let mut rng = Rng::new(episode_seed(cfg.seed, ep, dir.is_some()));
    let layout = code.layout();
    let epd = cfg.stripes * layout.rows();
    let ep_dir = dir.map(|d| d.join(format!("ep-{ep:04}")));
    let inner: Box<dyn DiskBackend> = match &ep_dir {
        Some(d) => Box::new(
            FileBackend::create(d, layout.cols(), epd, cfg.element_size)
                .map_err(|e| ctx.fail(format!("create file backend: {e}")))?,
        ),
        None => Box::new(MemBackend::new(layout.cols(), epd, cfg.element_size)),
    };
    let faulty = FaultyBackend::new(inner, Vec::new());
    let mut v = ctx.check(
        RaidVolume::new(Arc::clone(code), cfg.stripes, cfg.element_size, Box::new(faulty)),
        "open volume",
    )?;
    v.set_spares(cfg.spares);
    if cfg.threads > 1 {
        v.set_partitions(Some(cfg.threads));
    }
    if cfg.cache {
        // A budget smaller than the working set plus a low high-water
        // mark keeps the flush and eviction policies hot under chaos.
        v.enable_cache(CacheConfig {
            max_stripes: cfg.stripes.max(2),
            dirty_high_water: 2,
        });
    }

    let es = cfg.element_size;
    let capacity = v.data_elements();
    let per_stripe = capacity / cfg.stripes;
    let mut shadow = vec![0u8; capacity * es];
    let mut receipts_total = 0u64;
    // Fault budget: disks that died (or were scheduled to) plus disks
    // carrying possibly-unrepaired latent sectors. Keeping the union at
    // two or fewer guarantees no stripe ever exceeds RAID-6's erasure
    // capability, so every injected fault MUST be survivable.
    let mut dead_risk: BTreeSet<usize> = BTreeSet::new();
    let mut latent_disks: BTreeSet<usize> = BTreeSet::new();
    let risk = |dead: &BTreeSet<usize>, lat: &BTreeSet<usize>| dead.union(lat).count();
    // Transient injections are capped per disk at the policy's retry
    // budget: more would legitimately escalate to disk-dead and blow the
    // two-disk budget above.
    let max_transient = v.health().policy().max_retries;
    let mut transient_budget: BTreeMap<usize, u32> = BTreeMap::new();

    for _ in 0..cfg.steps_per_episode {
        report.steps += 1;
        match rng.below(10) {
            // Write a random extent of random bytes.
            0..=3 => {
                let start = rng.below(capacity);
                let len = 1 + rng.below((capacity - start).min(per_stripe + 2));
                let data: Vec<u8> = (0..len * es).map(|_| rng.byte()).collect();
                let receipt = ctx.check(v.write(start, &data), "write")?;
                receipts_total += receipt.total();
                shadow[start * es..(start + len) * es].copy_from_slice(&data);
                report.writes += 1;
            }
            // Read a random extent and compare against the shadow model.
            4..=5 => {
                let start = rng.below(capacity);
                let len = 1 + rng.below((capacity - start).min(per_stripe + 2));
                let degraded = !v.failed_disks().is_empty();
                let (bytes, receipt) = ctx.check(v.read(start, len), "read")?;
                receipts_total += receipt.total();
                if bytes != shadow[start * es..(start + len) * es] {
                    return Err(ctx.fail(format!(
                        "read [{start}, {}) diverged from shadow model",
                        start + len
                    )));
                }
                if degraded {
                    report.degraded_reads += 1;
                } else {
                    report.reads += 1;
                }
            }
            // Kill a disk — via the backend (the volume discovers it on
            // the next op) or the explicit admin path, 50/50.
            6 => {
                let disk = rng.below(v.disks());
                let mut prospective = dead_risk.clone();
                prospective.insert(disk);
                if risk(&prospective, &latent_disks) <= 2 {
                    dead_risk.insert(disk);
                    report.faults_dead += 1;
                    if rng.coin() {
                        ctx.check(v.fail_disk(disk), "fail_disk")?;
                    } else {
                        v.backend_faulty_mut()
                            .expect("chaos volume wraps a FaultyBackend")
                            .inject(Fault::Dead { disk });
                    }
                }
            }
            // Transient read glitch: safe while the disk's episode total
            // stays within the retry policy.
            7 => {
                let disk = rng.below(v.disks());
                let used = transient_budget.entry(disk).or_insert(0);
                let ops = (1 + rng.below(2) as u32).min(max_transient.saturating_sub(*used));
                if ops > 0 {
                    *used += ops;
                    v.backend_faulty_mut()
                        .expect("chaos volume wraps a FaultyBackend")
                        .inject(Fault::Transient { disk, ops });
                    report.faults_transient += 1;
                }
            }
            // Latent sector, or — on a fully healthy array — a torn
            // write aimed at an element the next write will touch.
            8 => {
                if risk(&dead_risk, &latent_disks) == 0 && rng.coin() {
                    // Torn write: arm the fault on one element of the
                    // extent we are about to write, write, then scrub —
                    // the scrubber must localize and repair the tear.
                    let start = rng.below(capacity);
                    let len = 1 + rng.below((capacity - start).min(per_stripe));
                    let victim = start + rng.below(len);
                    let (disk, index) =
                        v.locate_data_element(victim).expect("victim in range");
                    v.backend_faulty_mut()
                        .expect("chaos volume wraps a FaultyBackend")
                        .inject(Fault::TornWrite { disk, index });
                    report.faults_torn += 1;
                    let data: Vec<u8> = (0..len * es).map(|_| rng.byte()).collect();
                    let receipt = ctx.check(v.write(start, &data), "torn write")?;
                    receipts_total += receipt.total();
                    shadow[start * es..(start + len) * es].copy_from_slice(&data);
                    report.writes += 1;
                    if cfg.cache {
                        // The cache absorbed the write; the armed tear
                        // fires on the coalesced flush, so force it out
                        // before the scrub goes looking for it.
                        let receipt = ctx.check(v.flush(), "flush torn write")?;
                        receipts_total += receipt.total();
                    }
                    ctx.check(v.scrub(), "scrub after torn write")?;
                    report.scrubs += 1;
                    if !v.verify_all() {
                        return Err(ctx.fail(
                            "parity inconsistent after torn write + scrub".to_string(),
                        ));
                    }
                } else {
                    let disk = rng.below(v.disks());
                    let mut prospective = latent_disks.clone();
                    prospective.insert(disk);
                    if risk(&dead_risk, &prospective) <= 2 {
                        let index = rng.below(epd);
                        v.backend_faulty_mut()
                            .expect("chaos volume wraps a FaultyBackend")
                            .inject(Fault::LatentSector { disk, index });
                        latent_disks.insert(disk);
                        report.faults_latent += 1;
                    }
                }
            }
            // Pump the background healer (checkpointed, budgeted), or
            // scrub when healthy. Cached runs sometimes take the explicit
            // flush barrier instead.
            _ => {
                if cfg.cache && rng.below(3) == 0 {
                    let receipt = if cfg.threads > 1 && rng.coin() {
                        // Targeted barrier: drain one random partition's
                        // range, leaving the others' dirty stripes alone.
                        let part = rng.below(v.partition_map().len());
                        ctx.check(v.flush_partition(part), "flush partition")?
                    } else {
                        ctx.check(v.flush(), "flush")?
                    };
                    receipts_total += receipt.total();
                } else if rng.coin() {
                    let budget = 1 + rng.below(cfg.stripes);
                    let receipt = ctx.check(v.maintain(budget), "maintain")?;
                    receipts_total += receipt.total();
                    report.maintain_calls += 1;
                } else if v.failed_disks().is_empty() {
                    match v.scrub() {
                        Ok(_) => {
                            // Every element was read: any outstanding
                            // latent sector has been repaired in place.
                            latent_disks.clear();
                            report.scrubs += 1;
                        }
                        // Scrub discovered a dead disk mid-pass and the
                        // array went degraded under it — a tolerated
                        // outcome, not an integrity violation.
                        Err(VolumeError::TooManyFailures { .. }) => {}
                        Err(e) => return Err(ctx.fail(format!("scrub: {e}"))),
                    }
                }
            }
        }
    }

    // Settle: finish every rebuild (the backend may still hide injected
    // deaths the next pass will surface), flush latents with a scrub,
    // then verify everything.
    for _ in 0..8 {
        let receipt = ctx.check(v.rebuild(), "settle rebuild")?;
        receipts_total += receipt.total();
        report.rebuilds += 1;
        match v.scrub() {
            Ok(_) => {
                latent_disks.clear();
                dead_risk.clear();
                break;
            }
            // A hidden dead disk surfaced during the scrub: rebuild again.
            Err(VolumeError::TooManyFailures { .. }) => continue,
            Err(e) => return Err(ctx.fail(format!("settle scrub: {e}"))),
        }
    }
    if !v.failed_disks().is_empty() || !dead_risk.is_empty() {
        return Err(ctx.fail(format!(
            "array did not settle healthy: failed={:?}",
            v.failed_disks()
        )));
    }
    let (bytes, receipt) = ctx.check(v.read(0, capacity), "final read")?;
    receipts_total += receipt.total();
    if bytes != shadow {
        return Err(ctx.fail("final contents diverged from shadow model".to_string()));
    }
    if !v.verify_all() {
        return Err(ctx.fail("parity inconsistent after settle".to_string()));
    }
    if cfg.threads > 1 {
        // Partitioned batch pass over the settled array: the shard-merged
        // receipt must account parity-only traffic and leave both the
        // shadow model and parity consistency untouched.
        let receipt = ctx.check(v.encode_all(cfg.threads), "partitioned encode_all")?;
        receipts_total += receipt.total();
        if receipt.data_writes() != 0 {
            return Err(ctx.fail(format!(
                "partitioned encode_all wrote {} data elements (parity only expected)",
                receipt.data_writes()
            )));
        }
        if receipt.total() != receipt.per_disk_totals().iter().sum::<u64>() {
            return Err(ctx.fail(
                "merged shard receipt total disagrees with its per-disk sum".to_string(),
            ));
        }
        let (bytes, receipt) = ctx.check(v.read(0, capacity), "read after encode_all")?;
        receipts_total += receipt.total();
        if bytes != shadow {
            return Err(ctx
                .fail("contents diverged after partitioned encode_all".to_string()));
        }
        if !v.verify_all() {
            return Err(ctx
                .fail("parity inconsistent after partitioned encode_all".to_string()));
        }
    }

    // Ledger accounting invariants: the cumulative ledger and the health
    // monitor must tell the same healing story, and cumulative I/O can
    // never undercount the per-op receipts.
    let ledger = v.ledger();
    if ledger.retries() != v.health().retries_total() {
        return Err(ctx.fail(format!(
            "ledger counted {} retries, health monitor {}",
            ledger.retries(),
            v.health().retries_total()
        )));
    }
    if ledger.latent_repairs() != v.health().latent_repairs_total() {
        return Err(ctx.fail(format!(
            "ledger counted {} latent repairs, health monitor {}",
            ledger.latent_repairs(),
            v.health().latent_repairs_total()
        )));
    }
    if ledger.transitions().len() != v.health().transitions().len() {
        return Err(ctx.fail(format!(
            "ledger logged {} health transitions, monitor {}",
            ledger.transitions().len(),
            v.health().transitions().len()
        )));
    }
    if ledger.total() < receipts_total {
        return Err(ctx.fail(format!(
            "cumulative ledger ({}) undercounts summed receipts ({receipts_total})",
            ledger.total()
        )));
    }
    report.cache_flushes += ledger.cache_flushes();
    report.verifications += 1;
    report.episodes += 1;
    drop(v);
    if let Some(d) = ep_dir {
        let _ = std::fs::remove_dir_all(d);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Crash sweeps (file backend)
// ---------------------------------------------------------------------------

/// Deterministic baseline contents for the sweeps.
fn baseline(capacity: usize, es: usize, seed: u8) -> Vec<u8> {
    (0..capacity * es)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
        .collect()
}

/// Crash-at-every-op sweep over a multi-stripe write: for each op count
/// `k`, the process "crashes" at op `k` mid-write; the directory is then
/// reopened (running journal recovery) and the array must be
/// parity-consistent with every stripe's segment of the write atomically
/// old or new — never torn.
fn crash_write_sweep(
    code: &Arc<dyn ArrayCode>,
    cfg: &ChaosConfig,
    dir: &Path,
    report: &mut ChaosReport,
) -> Result<(), ChaosFailure> {
    let ctx = Episode { cfg, backend: "file", phase: "crash-write sweep".to_string() };
    let layout = code.layout();
    let epd = cfg.stripes * layout.rows();
    let es = cfg.element_size;
    let d = dir.join("crash-write");
    let per_stripe = layout.num_data_cells();
    let capacity = per_stripe * cfg.stripes;
    let old = baseline(capacity, es, 3);
    // A write that crosses a stripe boundary: two journaled segments.
    let start = per_stripe - 2;
    let len = 4.min(capacity - start);
    let new: Vec<u8> = (0..len * es).map(|i| (i as u8).wrapping_mul(101) ^ 0x5A).collect();
    let mut want_new = old.clone();
    want_new[start * es..(start + len) * es].copy_from_slice(&new);

    let mut k = 0u64;
    loop {
        // Fresh baseline for this crash point.
        {
            let be = FileBackend::create(&d, layout.cols(), epd, es)
                .map_err(|e| ctx.fail(format!("create: {e}")))?;
            let mut v = ctx.check(
                RaidVolume::new(Arc::clone(code), cfg.stripes, es, Box::new(be)),
                "open baseline",
            )?;
            ctx.check(v.write(0, &old), "baseline write")?;
        }
        // Crash at op k during the write.
        let be = FileBackend::open(&d).map_err(|e| ctx.fail(format!("reopen: {e}")))?;
        let faulty = FaultyBackend::new(Box::new(be), Vec::new())
            .with_faults([Fault::CrashAtOp { at_op: k }]);
        let mut v = ctx.check(
            RaidVolume::new(Arc::clone(code), cfg.stripes, es, Box::new(faulty)),
            "open for crash",
        )?;
        let wrote = v.write(start, &new).is_ok();
        drop(v);
        report.crash_points += 1;

        // Reopen: journal recovery runs, then the array must be sane.
        let be = FileBackend::open(&d).map_err(|e| ctx.fail(format!("recover: {e}")))?;
        if matches!(be.recovered_journal(), Some(JournalRecovery::RolledBack { .. })) {
            report.journal_rollbacks += 1;
        }
        let mut v = ctx.check(
            RaidVolume::open(Arc::clone(code), Box::new(be), false),
            "open after crash",
        )?;
        let (bytes, _) = ctx.check(v.read(0, capacity), "read after crash")?;
        if wrote && bytes != want_new {
            return Err(ctx.fail(format!(
                "crash point {k}: write reported success but contents differ"
            )));
        }
        if !wrote {
            // Each stripe's segment must be atomically old or new.
            for stripe in 0..cfg.stripes {
                let lo = (stripe * per_stripe).max(start);
                let hi = ((stripe + 1) * per_stripe).min(start + len);
                if lo >= hi {
                    continue;
                }
                let got = &bytes[lo * es..hi * es];
                if got != &old[lo * es..hi * es] && got != &want_new[lo * es..hi * es] {
                    return Err(ctx.fail(format!(
                        "crash point {k}: stripe {stripe} segment is torn \
                         (neither fully old nor fully new)"
                    )));
                }
            }
            // Untouched elements must be exactly the baseline.
            for at in (0..start).chain(start + len..capacity) {
                if bytes[at * es..(at + 1) * es] != old[at * es..(at + 1) * es] {
                    return Err(ctx.fail(format!(
                        "crash point {k}: element {at} outside the write changed"
                    )));
                }
            }
        }
        if !v.verify_all() {
            return Err(ctx.fail(format!(
                "crash point {k}: parity inconsistent after recovery"
            )));
        }
        drop(v);
        if wrote {
            break; // the crash point is past the whole write
        }
        k += 1;
    }
    let _ = std::fs::remove_dir_all(&d);
    Ok(())
}

/// Crash-at-every-op sweep over a rebuild: for each op count `k`, a
/// rebuild of a failed disk crashes at op `k`; reopening must resume from
/// the persisted checkpoint (never restarting at stripe 0 once progress
/// was checkpointed) and complete to a fully consistent array.
fn crash_rebuild_sweep(
    code: &Arc<dyn ArrayCode>,
    cfg: &ChaosConfig,
    dir: &Path,
    report: &mut ChaosReport,
) -> Result<(), ChaosFailure> {
    let ctx = Episode { cfg, backend: "file", phase: "crash-rebuild sweep".to_string() };
    let layout = code.layout();
    let epd = cfg.stripes * layout.rows();
    let es = cfg.element_size;
    let d = dir.join("crash-rebuild");
    let capacity = layout.num_data_cells() * cfg.stripes;
    let old = baseline(capacity, es, 9);
    let victim = 2 % layout.cols();

    let mut k = 0u64;
    loop {
        {
            let be = FileBackend::create(&d, layout.cols(), epd, es)
                .map_err(|e| ctx.fail(format!("create: {e}")))?;
            let mut v = ctx.check(
                RaidVolume::new(Arc::clone(code), cfg.stripes, es, Box::new(be)),
                "open baseline",
            )?;
            ctx.check(v.write(0, &old), "baseline write")?;
            ctx.check(v.fail_disk(victim), "fail disk")?;
        }
        let be = FileBackend::open(&d).map_err(|e| ctx.fail(format!("reopen: {e}")))?;
        let faulty = FaultyBackend::new(Box::new(be), Vec::new())
            .with_faults([Fault::CrashAtOp { at_op: k }]);
        let mut v = ctx.check(
            RaidVolume::open(Arc::clone(code), Box::new(faulty), false),
            "open for crash",
        )?;
        let rebuilt = v.rebuild().is_ok();
        drop(v);
        report.crash_points += 1;

        let be = FileBackend::open(&d).map_err(|e| ctx.fail(format!("recover: {e}")))?;
        let mut v = ctx.check(
            RaidVolume::open(Arc::clone(code), Box::new(be), false),
            "open after crash",
        )?;
        if !rebuilt {
            // The interrupted rebuild must be resumable: either the crash
            // hit before any progress (task restarts from 0 or the disk is
            // simply still failed) or the checkpoint carries it forward.
            if let Some(cp) = v.rebuild_progress() {
                if cp.next_stripe > 0 {
                    report.resumed_rebuilds += 1;
                }
            }
            ctx.check(v.rebuild(), "resume rebuild")?;
        }
        if !v.failed_disks().is_empty() {
            return Err(ctx.fail(format!(
                "crash point {k}: disk still failed after resumed rebuild"
            )));
        }
        let (bytes, _) = ctx.check(v.read(0, capacity), "read after rebuild")?;
        if bytes != old {
            return Err(ctx.fail(format!(
                "crash point {k}: contents diverged after crash-interrupted rebuild"
            )));
        }
        if !v.verify_all() {
            return Err(ctx.fail(format!(
                "crash point {k}: parity inconsistent after resumed rebuild"
            )));
        }
        drop(v);
        if rebuilt {
            break;
        }
        k += 1;
    }
    if report.resumed_rebuilds == 0 {
        return Err(ctx.fail(
            "no crash point resumed from a checkpoint past stripe 0 — \
             rebuilds are restarting from scratch"
                .to_string(),
        ));
    }
    let _ = std::fs::remove_dir_all(&d);
    Ok(())
}

/// Crash-at-every-op sweep over a coalesced dirty-cache flush: several
/// scattered writes are absorbed by the write-back cache (touching no
/// disk), then `flush()` pushes each dirty stripe out as one journaled
/// coalesced op and the process "crashes" at op `k` mid-flush. Reopening
/// must never expose a torn coalesced flush: per stripe, every dirty
/// element is atomically all-old or all-new, untouched elements keep the
/// baseline, and parity stays consistent.
fn crash_dirty_cache_sweep(
    code: &Arc<dyn ArrayCode>,
    cfg: &ChaosConfig,
    dir: &Path,
    report: &mut ChaosReport,
) -> Result<(), ChaosFailure> {
    let ctx = Episode { cfg, backend: "file", phase: "crash-dirty-cache sweep".to_string() };
    let layout = code.layout();
    let epd = cfg.stripes * layout.rows();
    let es = cfg.element_size;
    let d = dir.join("crash-cache");
    let per_stripe = layout.num_data_cells();
    let capacity = per_stripe * cfg.stripes;
    let old = baseline(capacity, es, 7);
    // Scattered dirty extents across two stripes — non-contiguous within
    // stripe 0 so the flush genuinely coalesces, plus a second stripe so
    // the flush spans multiple journaled ops.
    let extents: Vec<(usize, usize)> = vec![
        (0, 2),
        (per_stripe.saturating_sub(2).max(3), 2.min(per_stripe)),
        (per_stripe + 1, 2.min(capacity - per_stripe - 1)),
    ];
    let mut want_new = old.clone();
    let mut dirty = vec![false; capacity];
    for (i, &(start, len)) in extents.iter().enumerate() {
        for at in start..start + len {
            dirty[at] = true;
            for b in 0..es {
                want_new[at * es + b] = ((at * es + b) as u8).wrapping_mul(59) ^ (0x11 << i);
            }
        }
    }

    let mut k = 0u64;
    loop {
        // Fresh baseline for this crash point.
        {
            let be = FileBackend::create(&d, layout.cols(), epd, es)
                .map_err(|e| ctx.fail(format!("create: {e}")))?;
            let mut v = ctx.check(
                RaidVolume::new(Arc::clone(code), cfg.stripes, es, Box::new(be)),
                "open baseline",
            )?;
            ctx.check(v.write(0, &old), "baseline write")?;
        }
        // Absorb the writes into the cache, then crash at op k during the
        // coalesced flush. The budget is generous so nothing flushes early
        // and every element write below is pure cache traffic.
        let be = FileBackend::open(&d).map_err(|e| ctx.fail(format!("reopen: {e}")))?;
        let faulty = FaultyBackend::new(Box::new(be), Vec::new())
            .with_faults([Fault::CrashAtOp { at_op: k }]);
        let mut v = ctx.check(
            RaidVolume::open(Arc::clone(code), Box::new(faulty), false),
            "open for crash",
        )?;
        v.enable_cache(CacheConfig {
            max_stripes: cfg.stripes + 2,
            dirty_high_water: cfg.stripes + 2,
        });
        let mut absorbed = true;
        for &(start, len) in &extents {
            if v.write(start, &want_new[start * es..(start + len) * es]).is_err() {
                absorbed = false;
                break;
            }
        }
        let flushed = absorbed && v.flush().is_ok();
        drop(v);
        report.crash_points += 1;
        report.dirty_cache_crash_points += 1;

        // Reopen: journal recovery runs, then the array must be sane.
        let be = FileBackend::open(&d).map_err(|e| ctx.fail(format!("recover: {e}")))?;
        if matches!(be.recovered_journal(), Some(JournalRecovery::RolledBack { .. })) {
            report.journal_rollbacks += 1;
        }
        let mut v = ctx.check(
            RaidVolume::open(Arc::clone(code), Box::new(be), false),
            "open after crash",
        )?;
        let (bytes, _) = ctx.check(v.read(0, capacity), "read after crash")?;
        if flushed && bytes != want_new {
            return Err(ctx.fail(format!(
                "crash point {k}: flush reported success but contents differ"
            )));
        }
        if !flushed {
            // Per stripe, the coalesced flush is one journaled op: every
            // dirty element of the stripe must be atomically old or new.
            for stripe in 0..cfg.stripes {
                let ords: Vec<usize> = (stripe * per_stripe..(stripe + 1) * per_stripe)
                    .filter(|&at| dirty[at])
                    .collect();
                if ords.is_empty() {
                    continue;
                }
                let all_old = ords
                    .iter()
                    .all(|&at| bytes[at * es..(at + 1) * es] == old[at * es..(at + 1) * es]);
                let all_new = ords.iter().all(|&at| {
                    bytes[at * es..(at + 1) * es] == want_new[at * es..(at + 1) * es]
                });
                if !all_old && !all_new {
                    return Err(ctx.fail(format!(
                        "crash point {k}: stripe {stripe} coalesced flush is torn \
                         (dirty set neither fully old nor fully new)"
                    )));
                }
            }
            // Untouched elements must be exactly the baseline.
            for at in (0..capacity).filter(|&at| !dirty[at]) {
                if bytes[at * es..(at + 1) * es] != old[at * es..(at + 1) * es] {
                    return Err(ctx.fail(format!(
                        "crash point {k}: element {at} outside the dirty set changed"
                    )));
                }
            }
        }
        if !v.verify_all() {
            return Err(ctx.fail(format!(
                "crash point {k}: parity inconsistent after recovery"
            )));
        }
        drop(v);
        if flushed {
            break; // the crash point is past the whole flush
        }
        k += 1;
    }
    let _ = std::fs::remove_dir_all(&d);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_code::HvCode;

    fn code() -> Arc<dyn ArrayCode> {
        Arc::new(HvCode::new(5).unwrap())
    }

    #[test]
    fn prng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn mem_campaign_smoke() {
        let cfg = ChaosConfig {
            episodes: 10,
            crash_sweeps: false,
            ..Default::default()
        };
        let report = run(&code(), &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.episodes, 10);
        assert_eq!(report.verifications, 10);
        assert!(report.writes > 0);
        assert!(report.cache_flushes > 0, "cached episodes must coalesce flushes");
    }

    #[test]
    fn mem_campaign_without_cache_smoke() {
        let cfg = ChaosConfig {
            episodes: 4,
            crash_sweeps: false,
            cache: false,
            ..Default::default()
        };
        let report = run(&code(), &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.episodes, 4);
        assert_eq!(report.cache_flushes, 0);
    }

    #[test]
    fn threaded_campaign_smoke() {
        let cfg = ChaosConfig {
            episodes: 6,
            stripes: 8,
            crash_sweeps: false,
            threads: 4,
            ..Default::default()
        };
        let report = run(&code(), &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.episodes, 6);
        assert_eq!(report.verifications, 6);
        assert!(report.cache_flushes > 0);
    }

    #[test]
    fn threaded_campaign_is_deterministic() {
        let cfg = ChaosConfig {
            episodes: 3,
            crash_sweeps: false,
            threads: 2,
            ..Default::default()
        };
        let a = run(&code(), &cfg).unwrap_or_else(|f| panic!("{f}"));
        let b = run(&code(), &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_same_campaign() {
        let cfg = ChaosConfig {
            episodes: 5,
            crash_sweeps: false,
            ..Default::default()
        };
        let a = run(&code(), &cfg).unwrap_or_else(|f| panic!("{f}"));
        let b = run(&code(), &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(a, b, "a seeded campaign must be fully deterministic");
    }

    #[test]
    fn file_campaign_with_crash_sweeps_smoke() {
        let dir = std::env::temp_dir().join(format!("hv-chaos-{}", std::process::id()));
        let cfg = ChaosConfig {
            episodes: 3,
            dir: Some(dir.clone()),
            crash_sweeps: true,
            ..Default::default()
        };
        let report = run(&code(), &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.episodes, 6, "3 mem + 3 file");
        assert!(report.crash_points > 0);
        assert!(report.journal_rollbacks > 0, "some crash point must roll back");
        assert!(report.resumed_rebuilds > 0, "some crash point must resume");
        assert!(
            report.dirty_cache_crash_points > 0,
            "the dirty-cache sweep must exercise crash points mid-flush"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
