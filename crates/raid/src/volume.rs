//! The RAID-6 volume: striped storage with partial writes, degraded reads
//! and reconstruction over any array code, executed through the unified
//! I/O pipeline.
//!
//! Every operation is **lowered** per touched stripe into a
//! [`LoweredOp`] — element reads, a compiled [`XorPlan`], element writes —
//! and executed by the [`IoPipeline`] against a pluggable
//! [`DiskBackend`]. The pipeline hands the identical per-disk
//! [`raid_core::io::RequestSet`] to the timing simulator (when attached)
//! and to the cumulative [`IoLedger`], so data movement, simulated time,
//! and the paper's request accounting always agree.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use disk_sim::{DiskArray, DiskError};
use raid_core::decoder;
use raid_core::io::{IoLedger, LedgerShard};
use raid_core::layout::Layout;
use raid_core::plan::degraded::{plan_degraded_read, plan_degraded_read_multi};
use raid_core::plan::single::{plan_single_disk_recovery, SearchStrategy};
use raid_core::plan::write::{plan_batched_write, plan_partial_write, write_cost, WriteMode};
use raid_core::{ArrayCode, Cell, ChainId, Stripe, XorPlan};

use crate::addr::Addressing;
use crate::backend::{DiskBackend, FaultyBackend, MemBackend, RebuildCheckpoint};
use crate::cache::{batched_write_steps, CacheConfig, StripeCache};
use crate::health::{HealthMonitor, HealthState, RecoveryAction};
use crate::partition::PartitionMap;
use crate::pipeline::{DiskAddr, IoPipeline, LoweredOp};

/// Hard cap on recovery attempts per operation — a backstop against a
/// fault source that never clears (the health policy normally escalates
/// long before this).
const MAX_OP_ATTEMPTS: usize = 64;

/// Lowers `(lost cell, repair chain)` choices — the shape shared by the
/// degraded-read and single-disk recovery planners — into a compiled
/// [`XorPlan`]: each cell is rebuilt as the XOR of the other cells of its
/// chosen chain.
fn compile_chain_repairs(layout: &Layout, repairs: &[(Cell, ChainId)]) -> XorPlan {
    let sources: Vec<Vec<Cell>> = repairs
        .iter()
        .map(|(cell, chain)| {
            layout.chain(*chain).cells().filter(|c| c != cell).collect()
        })
        .collect();
    XorPlan::from_steps(
        layout.rows(),
        layout.cols(),
        repairs.iter().zip(&sources).map(|((cell, _), src)| (*cell, src.as_slice())),
    )
    .optimized()
}

/// Errors from volume operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VolumeError {
    /// Request exceeds the volume's data-element space.
    OutOfRange {
        /// First element requested.
        start: usize,
        /// Elements requested.
        len: usize,
        /// Volume capacity in data elements.
        capacity: usize,
    },
    /// Buffer length does not match `len × element_size`.
    BadBufferLength {
        /// Expected byte count.
        expected: usize,
        /// Provided byte count.
        got: usize,
    },
    /// A disk index was out of range.
    NoSuchDisk {
        /// The offending index.
        disk: usize,
    },
    /// More disks failed than the code tolerates.
    TooManyFailures {
        /// Currently failed disk count.
        failed: usize,
    },
    /// The spare pool cannot cover the failed disks: rebuild cannot
    /// start, and — with the write fence armed — new writes are refused
    /// while the array is parked at the RAID-6 correction limit.
    SpareExhausted {
        /// Failed disks with no rebuild underway.
        failed: usize,
        /// Spares left in the pool.
        spares: usize,
    },
    /// The backend (or the attached simulator) rejected a request.
    Backend(DiskError),
    /// The backend's (or simulator's) shape does not fit the volume.
    BackendMismatch {
        /// The mismatched dimension.
        what: &'static str,
        /// The volume's expectation.
        expected: usize,
        /// What the backend provides.
        got: usize,
    },
}

impl fmt::Display for VolumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VolumeError::OutOfRange { start, len, capacity } => {
                write!(f, "request [{start}, {}) exceeds capacity {capacity}", start + len)
            }
            VolumeError::BadBufferLength { expected, got } => {
                write!(f, "buffer holds {got} bytes, expected {expected}")
            }
            VolumeError::NoSuchDisk { disk } => write!(f, "no disk #{disk}"),
            VolumeError::TooManyFailures { failed } => {
                write!(f, "{failed} failed disks exceed RAID-6 tolerance")
            }
            VolumeError::SpareExhausted { failed, spares } => {
                write!(f, "spare pool exhausted: {failed} failed disks uncovered, {spares} spares")
            }
            VolumeError::Backend(e) => write!(f, "backend: {e}"),
            VolumeError::BackendMismatch { what, expected, got } => {
                write!(f, "backend {what} is {got}, volume needs {expected}")
            }
        }
    }
}

impl std::error::Error for VolumeError {}

impl From<DiskError> for VolumeError {
    fn from(e: DiskError) -> Self {
        VolumeError::Backend(e)
    }
}

/// A RAID-6 volume striping data elements over a pluggable disk backend.
///
/// ```
/// use std::sync::Arc;
/// use hv_code::HvCode;
/// use raid_array::RaidVolume;
///
/// let mut v = RaidVolume::in_memory(Arc::new(HvCode::new(7)?), 4, 16);
/// v.write(3, &[0xAB; 2 * 16])?;          // two elements at address 3
/// v.fail_disk(1)?;                        // disk dies
/// let (bytes, io) = v.read(3, 2)?;        // degraded read still serves
/// assert_eq!(bytes, vec![0xAB; 32]);
/// assert!(io.total_reads() >= 2);
/// v.rebuild()?;                           // minimum-I/O reconstruction
/// assert!(v.verify_all());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct RaidVolume {
    code: Arc<dyn ArrayCode>,
    addressing: Addressing,
    element_size: usize,
    stripes: usize,
    pipeline: IoPipeline,
    failed: BTreeSet<usize>,
    health: HealthMonitor,
    /// Hot spares available to the background healer.
    spares: usize,
    /// Start a background rebuild automatically when a disk dies and a
    /// spare is available.
    auto_heal: bool,
    /// The in-flight (checkpointed) background rebuild, if any.
    rebuild_task: Option<RebuildTask>,
    /// When armed, refuse new writes while the array is parked at the
    /// correction limit with no rebuild underway and no spares left.
    write_fence: bool,
    /// The write-back stripe cache, when enabled.
    cache: Option<StripeCache>,
    /// Explicit stripe-partition count for batched execution; `None`
    /// derives one from the host's available parallelism.
    partitions: Option<usize>,
}

/// In-memory mirror of the persisted [`RebuildCheckpoint`].
#[derive(Debug, Clone)]
struct RebuildTask {
    /// Disks being rebuilt onto spares (they stay in `failed` — their
    /// content is invalid — even though the backend already serves the
    /// blank replacements).
    disks: Vec<usize>,
    /// First stripe not yet rebuilt.
    next_stripe: usize,
}

impl fmt::Debug for RaidVolume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RaidVolume")
            .field("code", &self.code.name())
            .field("backend", &self.pipeline.backend().kind())
            .field("stripes", &self.stripes)
            .field("element_size", &self.element_size)
            .field("failed", &self.failed)
            .field("health", &self.health.state())
            .field("rebuild_task", &self.rebuild_task)
            .finish()
    }
}

impl RaidVolume {
    /// Creates a volume of `stripes` stripes over the given backend
    /// (no stripe rotation).
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::BackendMismatch`] if the backend's shape
    /// does not fit the code and stripe count.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` or `element_size` is zero.
    pub fn new(
        code: Arc<dyn ArrayCode>,
        stripes: usize,
        element_size: usize,
        backend: Box<dyn DiskBackend>,
    ) -> Result<Self, VolumeError> {
        Self::with_backend(code, stripes, element_size, false, backend)
    }

    /// Creates a volume over a fresh in-memory backend — the default for
    /// tests and experiments.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` or `element_size` is zero.
    pub fn in_memory(code: Arc<dyn ArrayCode>, stripes: usize, element_size: usize) -> Self {
        Self::with_rotation(code, stripes, element_size, false)
    }

    /// Like [`RaidVolume::in_memory`] with stripe rotation enabled or
    /// disabled.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` or `element_size` is zero.
    pub fn with_rotation(
        code: Arc<dyn ArrayCode>,
        stripes: usize,
        element_size: usize,
        rotate: bool,
    ) -> Self {
        assert!(stripes > 0, "volume needs at least one stripe");
        assert!(element_size > 0, "element size must be positive");
        let layout = code.layout();
        let backend =
            MemBackend::new(layout.cols(), stripes * layout.rows(), element_size);
        Self::with_backend(code, stripes, element_size, rotate, Box::new(backend))
            .expect("in-memory backend matches by construction")
    }

    /// Creates a volume over an arbitrary backend with explicit rotation.
    ///
    /// A fresh all-zero backend is parity-consistent (every XOR chain of
    /// zeroes is zero), so no initial encode pass is issued. Failure flags
    /// already recorded by the backend (e.g. a reopened [`crate::backend::FileBackend`])
    /// are adopted as the volume's failed set.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::BackendMismatch`] on shape mismatches, or
    /// [`VolumeError::TooManyFailures`] if the backend reports more than
    /// two failed disks.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` or `element_size` is zero.
    pub fn with_backend(
        code: Arc<dyn ArrayCode>,
        stripes: usize,
        element_size: usize,
        rotate: bool,
        backend: Box<dyn DiskBackend>,
    ) -> Result<Self, VolumeError> {
        assert!(stripes > 0, "volume needs at least one stripe");
        assert!(element_size > 0, "element size must be positive");
        let layout = code.layout();
        if backend.disks() != layout.cols() {
            return Err(VolumeError::BackendMismatch {
                what: "disk count",
                expected: layout.cols(),
                got: backend.disks(),
            });
        }
        if backend.element_size() != element_size {
            return Err(VolumeError::BackendMismatch {
                what: "element size",
                expected: element_size,
                got: backend.element_size(),
            });
        }
        if backend.elements_per_disk() != stripes * layout.rows() {
            return Err(VolumeError::BackendMismatch {
                what: "elements per disk",
                expected: stripes * layout.rows(),
                got: backend.elements_per_disk(),
            });
        }
        let addressing = Addressing::new(layout.num_data_cells(), layout.cols(), rotate);
        let mut failed = BTreeSet::new();
        for d in 0..backend.disks() {
            if backend.is_failed(d) {
                failed.insert(d);
            }
        }
        if failed.len() > 2 {
            return Err(VolumeError::TooManyFailures { failed: failed.len() });
        }
        let mut volume = RaidVolume {
            code,
            addressing,
            element_size,
            stripes,
            pipeline: IoPipeline::new(backend),
            failed,
            health: HealthMonitor::default(),
            spares: 0,
            auto_heal: true,
            rebuild_task: None,
            write_fence: false,
            cache: None,
            partitions: None,
        };
        volume.resume_rebuild_checkpoint()?;
        volume.note_health();
        Ok(volume)
    }

    /// Adopts a persisted rebuild checkpoint: the previous process died
    /// mid-rebuild, and the checkpointed disks hold invalid data up from
    /// `next_stripe`. Resuming means continuing from there — *not*
    /// re-zeroing the spares (that would destroy the stripes already
    /// rebuilt) and *not* restarting at stripe 0. The one exception: a
    /// disk the checkpoint names that the backend still reports failed
    /// (crash fell between checkpoint-write and spare-swap, which implies
    /// `next_stripe == 0`) gets its blank spare now.
    fn resume_rebuild_checkpoint(&mut self) -> Result<(), VolumeError> {
        let Some(cp) = self.pipeline.backend().load_checkpoint() else { return Ok(()) };
        if cp.disks.iter().any(|&d| d >= self.disks()) || cp.next_stripe > self.stripes {
            // A checkpoint for a different geometry: drop it rather than
            // scribble on the wrong disks.
            self.pipeline.backend_mut().save_checkpoint(None)?;
            return Ok(());
        }
        for &d in &cp.disks {
            if self.pipeline.backend().is_failed(d) {
                self.pipeline.backend_mut().replace(d)?;
            }
            self.failed.insert(d);
        }
        if self.failed.len() > 2 {
            return Err(VolumeError::TooManyFailures { failed: self.failed.len() });
        }
        self.rebuild_task =
            Some(RebuildTask { disks: cp.disks, next_stripe: cp.next_stripe });
        Ok(())
    }

    /// Opens an existing backend as a volume, deriving the stripe count
    /// from the backend's geometry — the `hvraid fsck` entry point.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::BackendMismatch`] if the backend's element
    /// count is not a whole number of stripes for this code.
    pub fn open(
        code: Arc<dyn ArrayCode>,
        backend: Box<dyn DiskBackend>,
        rotate: bool,
    ) -> Result<Self, VolumeError> {
        let rows = code.layout().rows();
        let epd = backend.elements_per_disk();
        if epd == 0 || !epd.is_multiple_of(rows) {
            return Err(VolumeError::BackendMismatch {
                what: "elements per disk",
                expected: rows,
                got: epd,
            });
        }
        let stripes = epd / rows;
        let element_size = backend.element_size();
        Self::with_backend(code, stripes, element_size, rotate, backend)
    }

    /// The array code in use.
    pub fn code(&self) -> &dyn ArrayCode {
        self.code.as_ref()
    }

    /// The backend kind (`"mem"`, `"file"`, `"faulty"`).
    pub fn backend_kind(&self) -> &'static str {
        self.pipeline.backend().kind()
    }

    /// Volume capacity in data elements.
    pub fn data_elements(&self) -> usize {
        self.addressing.data_per_stripe() * self.stripes
    }

    /// Stripes in the volume.
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// The linear-address-to-stripe map (the service scheduler buckets
    /// incoming ops with it before dispatching per partition).
    pub fn addressing(&self) -> &Addressing {
        &self.addressing
    }

    /// Element size in bytes.
    pub fn element_size(&self) -> usize {
        self.element_size
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.code.layout().cols()
    }

    /// Currently failed disks.
    pub fn failed_disks(&self) -> Vec<usize> {
        self.failed.iter().copied().collect()
    }

    /// The cumulative per-disk I/O ledger.
    pub fn ledger(&self) -> &IoLedger {
        self.pipeline.ledger()
    }

    /// Resets the I/O ledger (between experiments).
    pub fn reset_ledger(&mut self) {
        self.pipeline.reset_ledger();
    }

    /// Attaches a timing simulator: every subsequent request set the
    /// pipeline commits is also run through `sim`, and
    /// [`RaidVolume::last_op_latency_ms`] reports per-operation makespans.
    /// The simulator's failure state is synced to the volume's.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::BackendMismatch`] if the simulator's disk
    /// count differs.
    pub fn attach_sim(&mut self, mut sim: DiskArray) -> Result<(), VolumeError> {
        if sim.disks() != self.disks() {
            return Err(VolumeError::BackendMismatch {
                what: "simulator disk count",
                expected: self.disks(),
                got: sim.disks(),
            });
        }
        for &d in &self.failed {
            let _ = sim.fail_disk(d);
        }
        self.pipeline.attach_sim(sim);
        Ok(())
    }

    /// Detaches and returns the timing simulator, if one was attached.
    pub fn detach_sim(&mut self) -> Option<DiskArray> {
        self.pipeline.detach_sim()
    }

    /// The attached timing simulator, if any.
    pub fn sim(&self) -> Option<&DiskArray> {
        self.pipeline.sim()
    }

    /// Simulated latency of the most recent operation (sum of its request
    /// batches' makespans; 0 without an attached simulator).
    pub fn last_op_latency_ms(&self) -> f64 {
        self.pipeline.op_latency_ms()
    }

    /// Marks a disk failed (its contents become unreadable).
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] if the disk does not exist or a third disk
    /// would be failed.
    pub fn fail_disk(&mut self, disk: usize) -> Result<(), VolumeError> {
        if disk >= self.disks() {
            return Err(VolumeError::NoSuchDisk { disk });
        }
        self.failed.insert(disk);
        if self.failed.len() > 2 {
            self.failed.remove(&disk);
            return Err(VolumeError::TooManyFailures { failed: 3 });
        }
        self.pipeline.backend_mut().fail(disk)?;
        if let Some(sim) = self.pipeline.sim_mut() {
            let _ = sim.fail_disk(disk);
        }
        self.after_failure();
        Ok(())
    }

    /// The volume's health monitor (state machine, retry/repair stats).
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Current health state (`Healthy → Degraded → Critical → Failed`).
    pub fn health_state(&self) -> HealthState {
        self.health.state()
    }

    /// Stocks the hot-spare pool. Spares are consumed (one per dead disk)
    /// when a background rebuild starts.
    pub fn set_spares(&mut self, spares: usize) {
        self.spares = spares;
    }

    /// Spares currently in the pool.
    pub fn spares(&self) -> usize {
        self.spares
    }

    /// Enables/disables automatic background-rebuild kickoff on disk
    /// death (on by default; inert while the spare pool is empty).
    pub fn set_auto_heal(&mut self, on: bool) {
        self.auto_heal = on;
    }

    /// Arms/disarms the critical write fence (off by default). While
    /// armed, a volume parked at the RAID-6 correction limit — two dead
    /// disks, no rebuild underway, no spares — refuses new writes with
    /// [`VolumeError::SpareExhausted`] instead of accepting data with
    /// zero remaining redundancy. Reads, flushes of already-accepted
    /// data, and rebuild I/O are unaffected; the fence lifts as soon as
    /// a spare arrives and a rebuild starts.
    pub fn set_write_fence(&mut self, on: bool) {
        self.write_fence = on;
    }

    /// True when the armed fence is currently refusing writes.
    pub fn write_fenced(&self) -> bool {
        self.write_fence
            && self.failed.len() >= 2
            && self.rebuild_task.is_none()
            && self.spares == 0
    }

    /// Asks the healer to cover every failed disk, reporting — rather
    /// than silently parking on — an empty spare pool.
    ///
    /// With spares stocked this behaves like a zero-budget
    /// [`RaidVolume::maintain`]: it starts the spare-consuming rebuild
    /// (if warranted) without rebuilding any stripes yet. With failed
    /// disks left uncovered and the pool empty it returns the typed
    /// [`VolumeError::SpareExhausted`] so a fleet controller can queue
    /// the volume for a spare instead of inferring exhaustion from
    /// "maintain did nothing".
    ///
    /// # Errors
    ///
    /// [`VolumeError::SpareExhausted`] when failed disks remain with no
    /// rebuild covering them and no spares; backend errors from the
    /// rebuild kickoff.
    pub fn request_heal(&mut self) -> Result<(), VolumeError> {
        if self.rebuild_task.is_none() && !self.failed.is_empty() {
            if self.spares == 0 {
                return Err(VolumeError::SpareExhausted {
                    failed: self.failed.len(),
                    spares: 0,
                });
            }
            return self.start_spare_rebuild();
        }
        let covered: usize = self
            .rebuild_task
            .as_ref()
            .map_or(0, |t| t.disks.iter().filter(|d| self.failed.contains(d)).count());
        let uncovered = self.failed.len().saturating_sub(covered);
        if uncovered > 0 && self.spares == 0 {
            return Err(VolumeError::SpareExhausted { failed: uncovered, spares: 0 });
        }
        // Uncovered failures with spares in the pool wait for the active
        // task to finish; the next maintain() starts their rebuild.
        Ok(())
    }

    /// Pins the stripe-partition count used by batched execution
    /// ([`RaidVolume::encode_all`], [`RaidVolume::rebuild_all`],
    /// partition-grouped [`RaidVolume::flush`]). `None` (the default)
    /// derives one from the host's available parallelism.
    pub fn set_partitions(&mut self, partitions: Option<usize>) {
        self.partitions = partitions.map(|p| p.max(1));
    }

    /// The volume's current stripe-partition map: contiguous stripe
    /// ranges, each owned by one worker/ledger shard.
    pub fn partition_map(&self) -> PartitionMap {
        match self.partitions {
            Some(p) => PartitionMap::build(self.stripes, p),
            None => PartitionMap::auto(self.stripes),
        }
    }

    /// The partition map batched ops actually execute under: the pinned
    /// count when set, otherwise one partition per requested thread.
    fn map_for(&self, threads: usize) -> PartitionMap {
        match self.partitions {
            Some(p) => PartitionMap::build(self.stripes, p),
            None => PartitionMap::build(self.stripes, threads.max(1)),
        }
    }

    /// The in-flight background rebuild, as its persisted checkpoint
    /// form, if one is active.
    pub fn rebuild_progress(&self) -> Option<RebuildCheckpoint> {
        self.rebuild_task
            .as_ref()
            .map(|t| RebuildCheckpoint { disks: t.disks.clone(), next_stripe: t.next_stripe })
    }

    /// The fault injector wrapping the backend, if the volume runs over a
    /// [`FaultyBackend`] (chaos/test hook).
    pub fn backend_faulty_mut(&mut self) -> Option<&mut FaultyBackend> {
        self.pipeline.backend_mut().as_faulty_mut()
    }

    /// Enables the write-back stripe cache. Subsequent writes are
    /// absorbed in memory and flushed coalesced per stripe (see
    /// [`CacheConfig`] for the policy knobs); reads become read-through
    /// cached. Call [`RaidVolume::flush`] for an explicit write barrier —
    /// dropping the volume flushes best-effort.
    ///
    /// # Panics
    ///
    /// Panics if a cache is already enabled.
    pub fn enable_cache(&mut self, cfg: CacheConfig) {
        assert!(self.cache.is_none(), "cache already enabled");
        self.cache =
            Some(StripeCache::new(cfg, self.addressing.data_per_stripe(), self.element_size));
    }

    /// Flushes and removes the stripe cache, returning the flush I/O.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] if the final flush cannot be served; the
    /// cache stays enabled with its dirty data intact.
    pub fn disable_cache(&mut self) -> Result<IoLedger, VolumeError> {
        let receipt = self.flush()?;
        self.cache = None;
        Ok(receipt)
    }

    /// True when the write-back stripe cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Stripes resident in the cache (dirty or clean); 0 without a cache.
    pub fn cache_resident_stripes(&self) -> usize {
        self.cache.as_ref().map_or(0, StripeCache::len)
    }

    /// Stripes with unflushed dirty data; 0 without a cache.
    pub fn cache_dirty_stripes(&self) -> usize {
        self.cache.as_ref().map_or(0, StripeCache::dirty_count)
    }

    /// Re-derives the health state from the failed-disk count, recording
    /// the transition in the monitor and the cumulative ledger.
    fn note_health(&mut self) {
        if let Some((from, to)) = self.health.observe_failed_count(self.failed.len()) {
            self.pipeline.ledger_mut().note_transition(format!("{from}->{to}"));
        }
    }

    /// Post-failure bookkeeping: health transition, then — when auto-heal
    /// is on and spares are stocked — kick off the background rebuild.
    fn after_failure(&mut self) {
        self.note_health();
        if self.auto_heal && self.rebuild_task.is_none() && self.spares > 0 {
            // Best effort: a failure here (e.g. mid-crash) leaves the
            // array degraded-but-consistent, and the next maintain() call
            // retries the kickoff.
            let _ = self.start_spare_rebuild();
        }
    }

    /// One recovery step for a backend error, per the health policy:
    /// transients are retried (the caller loops), latent sectors repaired
    /// in place, dead disks adopted into the failed set, everything else
    /// propagated.
    fn recover(&mut self, e: DiskError) -> Result<(), VolumeError> {
        match self.health.on_error(&e) {
            RecoveryAction::Retry { .. } => {
                self.pipeline.ledger_mut().note_retry();
                Ok(())
            }
            RecoveryAction::RepairLatent { disk, index } => self.repair_latent(disk, index),
            RecoveryAction::FailDisk { disk } => self.adopt_failure(disk, e),
            RecoveryAction::Fatal => Err(VolumeError::Backend(e)),
            // Rebuild pacing is not an error response; the monitor never
            // emits it here. Treat a stray one as "nothing to recover".
            RecoveryAction::Throttle { .. } => Ok(()),
        }
    }

    /// Records a failure the backend reported on its own (e.g. a
    /// [`FaultyBackend`] fault) so the operation can be replanned
    /// degraded. Errors if the failure is not survivable.
    fn adopt_failure(&mut self, disk: usize, source: DiskError) -> Result<(), VolumeError> {
        if disk >= self.disks() {
            return Err(VolumeError::Backend(source));
        }
        if self.failed.contains(&disk) {
            // A spare died while being rebuilt: swap in a fresh one and
            // restart its rebuild from stripe 0 (the replacement is
            // blank).
            let rebuilding =
                self.rebuild_task.as_ref().is_some_and(|t| t.disks.contains(&disk));
            if rebuilding && self.pipeline.backend().is_failed(disk) {
                self.pipeline.backend_mut().replace(disk)?;
                if let Some(sim) = self.pipeline.sim_mut() {
                    let _ = sim.restore_disk(disk);
                }
                let task = self.rebuild_task.as_mut().expect("rebuilding implies a task");
                task.next_stripe = 0;
                let cp =
                    RebuildCheckpoint { disks: task.disks.clone(), next_stripe: 0 };
                self.pipeline.backend_mut().save_checkpoint(Some(&cp))?;
                return Ok(());
            }
            return Err(VolumeError::Backend(source));
        }
        if self.failed.len() >= 2 {
            return Err(VolumeError::TooManyFailures { failed: self.failed.len() + 1 });
        }
        self.failed.insert(disk);
        let _ = self.pipeline.backend_mut().fail(disk);
        if let Some(sim) = self.pipeline.sim_mut() {
            let _ = sim.fail_disk(disk);
        }
        self.after_failure();
        Ok(())
    }

    /// Reconstructs the one element a latent-sector error named from its
    /// parity chains and rewrites it in place — the write remaps the bad
    /// sector. Runs through the pipeline, so the repair I/O is accounted.
    /// Additional bad sectors discovered while reading the reconstruction
    /// sources are folded into the same decode.
    fn repair_latent(&mut self, disk: usize, index: usize) -> Result<(), VolumeError> {
        self.pipeline.ledger_mut().note_latent_repair();
        let mut sectors = vec![(disk, index)];
        for _ in 0..MAX_OP_ATTEMPTS {
            match self.try_repair_latent(&sectors) {
                Err(VolumeError::Backend(DiskError::LatentSector { disk: d, index: i })) => {
                    if sectors.contains(&(d, i)) {
                        return Err(VolumeError::Backend(DiskError::LatentSector {
                            disk: d,
                            index: i,
                        }));
                    }
                    // Another bad sector among the sources: charge it
                    // against the policy and widen the decode.
                    match self.health.on_error(&DiskError::LatentSector { disk: d, index: i })
                    {
                        RecoveryAction::FailDisk { disk } => {
                            self.adopt_failure(disk, DiskError::LatentSector {
                                disk: d,
                                index: i,
                            })?;
                        }
                        _ => {
                            self.pipeline.ledger_mut().note_latent_repair();
                            sectors.push((d, i));
                        }
                    }
                }
                // Transients/disk deaths during the repair reads go
                // through the normal policy (latent errors are already
                // intercepted above, so this cannot re-enter
                // repair_latent).
                Err(VolumeError::Backend(e)) => self.recover(e)?,
                other => return other,
            }
        }
        Err(VolumeError::Backend(DiskError::LatentSector { disk, index }))
    }

    /// One in-place reconstruction attempt for the given bad sectors
    /// (all in one stripe): decode them — together with any whole failed
    /// columns — from the surviving elements, write back only the bad
    /// sectors.
    fn try_repair_latent(&mut self, sectors: &[(usize, usize)]) -> Result<(), VolumeError> {
        let code = Arc::clone(&self.code);
        let layout = code.layout();
        let rows = layout.rows();
        let live: Vec<(usize, usize)> = sectors
            .iter()
            .copied()
            .filter(|&(d, i)| {
                d < self.disks() && i < self.stripes * rows && !self.disk_failed_at(d, i / rows)
            })
            .collect();
        let Some(&(d0, i0)) = live.first() else { return Ok(()) };
        let stripe_idx = i0 / rows;
        let cells: Vec<Cell> = live
            .iter()
            .map(|&(d, i)| {
                debug_assert_eq!(i / rows, stripe_idx, "latent repair spans one stripe");
                Cell::new(i % rows, self.addressing.logical_col(stripe_idx, d))
            })
            .collect();
        let failed_cols = self.failed_cols(stripe_idx);
        let mut lost: Vec<Cell> =
            failed_cols.iter().flat_map(|&c| layout.cells_in_col(c)).collect();
        lost.extend(cells.iter().copied());
        let Ok(decode_plan) = decoder::plan_decode(layout, &lost) else {
            // Bad sectors + failed columns exceed the code's erasure
            // capability: unrecoverable in place.
            return Err(VolumeError::Backend(DiskError::LatentSector {
                disk: d0,
                index: i0,
            }));
        };
        let mut reads = Vec::new();
        for col in 0..layout.cols() {
            if failed_cols.contains(&col) {
                continue;
            }
            for cell in layout.cells_in_col(col) {
                if !cells.contains(&cell) {
                    reads.push((cell, self.addr_of(stripe_idx, cell)));
                }
            }
        }
        let mut data_writes = Vec::new();
        let mut parity_writes = Vec::new();
        for &cell in &cells {
            let target = (cell, self.addr_of(stripe_idx, cell));
            if layout.is_data(cell) {
                data_writes.push(target);
            } else {
                parity_writes.push(target);
            }
        }
        let op = LoweredOp {
            reads,
            plan: Some(XorPlan::compile_decode(layout, &decode_plan).optimized()),
            data_writes,
            parity_writes,
        };
        let mut scratch = Stripe::for_layout(layout, self.element_size);
        self.pipeline.execute(&op, &mut scratch)?;
        Ok(())
    }

    /// The backend address `(disk, element index)` holding linear data
    /// element `at` — lets fault-driving code (the chaos harness, tests)
    /// aim element-granular faults at an address an upcoming operation
    /// will touch. `None` if `at` is out of range.
    pub fn locate_data_element(&self, at: usize) -> Option<(usize, usize)> {
        if at >= self.data_elements() {
            return None;
        }
        let per = self.addressing.data_per_stripe();
        let (stripe, ordinal) = (at / per, at % per);
        let cell = self.code.layout().data_cells()[ordinal];
        let a = self.addr_of(stripe, cell);
        Some((a.disk, a.index))
    }

    /// The backend address of `cell` in stripe `stripe`.
    fn addr_of(&self, stripe: usize, cell: Cell) -> DiskAddr {
        DiskAddr {
            disk: self.addressing.physical_disk(stripe, cell.col),
            index: stripe * self.code.layout().rows() + cell.row,
        }
    }

    /// Whether `disk` must be treated as failed for operations touching
    /// `stripe`. A disk under rebuild is failed only ahead of the rebuild
    /// frontier: stripes below `next_stripe` are fully reconstructed on the
    /// live replacement, so reads may hit them directly and writes MUST
    /// write through — skipping them would leave the already-rebuilt region
    /// stale and surface as silent corruption when the rebuild finishes.
    fn disk_failed_at(&self, disk: usize, stripe: usize) -> bool {
        self.failed.contains(&disk)
            && !self
                .rebuild_task
                .as_ref()
                .is_some_and(|t| stripe < t.next_stripe && t.disks.contains(&disk))
    }

    /// The stripe's logical columns currently failed (rebuild-frontier
    /// aware, see [`Self::disk_failed_at`]).
    fn failed_cols(&self, stripe: usize) -> Vec<usize> {
        self.failed
            .iter()
            .filter(|&&d| self.disk_failed_at(d, stripe))
            .map(|&d| self.addressing.logical_col(stripe, d))
            .collect()
    }

    /// Writes `len` data elements starting at linear element `start`.
    ///
    /// On a healthy array each touched stripe lowers to one pipeline op:
    /// the cheaper of read-modify-write and reconstruct-write (no reads at
    /// all for a covering write), with the parity math compiled into an
    /// [`XorPlan`] over a double-height scratch (old values below, new
    /// values above). While disks are failed the write is served in
    /// **degraded mode**: decode the stripe, patch, re-encode, rewrite the
    /// surviving columns. A disk failing mid-write is rolled back by the
    /// pipeline and the operation replans degraded automatically.
    ///
    /// Returns the operation's I/O ledger (the old "receipt").
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] on range/length mismatches, or if more
    /// disks fail than the code tolerates.
    pub fn write(&mut self, start: usize, data: &[u8]) -> Result<IoLedger, VolumeError> {
        let len = data.len() / self.element_size.max(1);
        if data.len() != len * self.element_size || data.is_empty() {
            return Err(VolumeError::BadBufferLength {
                expected: len.max(1) * self.element_size,
                got: data.len(),
            });
        }
        self.check_range(start, len)?;
        if self.write_fenced() {
            return Err(VolumeError::SpareExhausted { failed: self.failed.len(), spares: 0 });
        }
        self.pipeline.begin_op();
        if self.cache.is_some() {
            return self.write_cached(start, len, data);
        }
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let attempt = if self.failed.is_empty() {
                self.try_write_healthy(start, len, data)
            } else {
                self.try_write_degraded(start, len, data)
            };
            match attempt {
                Err(VolumeError::Backend(e)) if attempts < MAX_OP_ATTEMPTS => {
                    self.recover(e)?;
                }
                other => {
                    if other.is_ok() {
                        self.health.note_op_ok();
                    }
                    return other;
                }
            }
        }
    }

    /// Absorbs a write into the stripe cache (no disk I/O), then enforces
    /// the flush policy: flush LRU dirty stripes down to the high-water
    /// mark, then evict down to the memory budget. The returned ledger
    /// holds only the I/O the policy actually issued.
    fn write_cached(
        &mut self,
        start: usize,
        len: usize,
        data: &[u8],
    ) -> Result<IoLedger, VolumeError> {
        let mut offset = 0usize;
        for seg in self.addressing.split(start, len) {
            let cache = self.cache.as_mut().expect("cached write needs a cache");
            let entry = cache.ensure(seg.stripe);
            for k in 0..seg.len {
                let at = (offset + k) * self.element_size;
                entry.write(seg.start + k, &data[at..at + self.element_size]);
            }
            offset += seg.len;
        }

        let mut receipt = IoLedger::new(self.disks());
        let high_water = self.cache.as_ref().expect("cache enabled").config().dirty_high_water;
        while self.cache.as_ref().expect("cache enabled").dirty_count() > high_water {
            let stripe = self
                .cache
                .as_ref()
                .expect("cache enabled")
                .oldest_dirty()
                .expect("dirty_count > 0 implies a dirty stripe");
            receipt.merge(&self.flush_stripe(stripe)?);
        }
        receipt.merge(&self.enforce_cache_budget()?);
        self.health.note_op_ok();
        Ok(receipt)
    }

    /// Evicts least-recently-used entries until the cache fits its
    /// memory budget, preferring clean entries (free) and flushing dirty
    /// ones first when nothing clean is left.
    fn enforce_cache_budget(&mut self) -> Result<IoLedger, VolumeError> {
        let mut receipt = IoLedger::new(self.disks());
        loop {
            let cache = self.cache.as_ref().expect("cache enabled");
            if cache.len() <= cache.config().max_stripes {
                return Ok(receipt);
            }
            let victim = match cache.oldest_clean() {
                Some(s) => s,
                None => {
                    let s = cache.oldest().expect("over budget implies entries");
                    receipt.merge(&self.flush_stripe(s)?);
                    s
                }
            };
            self.cache.as_mut().expect("cache enabled").remove(victim);
            self.pipeline.ledger_mut().note_cache_eviction();
            receipt.note_cache_eviction();
        }
    }

    /// Flushes every dirty stripe as one coalesced op each — the explicit
    /// write barrier (also run on drop). A no-op without a cache or dirty
    /// data. Flushed entries stay resident as clean read cache.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] if a flush cannot be served; the affected
    /// stripe's dirty data stays in the cache for a later retry.
    pub fn flush(&mut self) -> Result<IoLedger, VolumeError> {
        if self.cache.is_none() {
            return Ok(IoLedger::new(self.disks()));
        }
        self.pipeline.begin_op();
        let map = self.partition_map();
        let mut shards = Vec::with_capacity(map.len());
        for part in 0..map.len() {
            shards.push(self.flush_partition_shard(&map, part)?);
        }
        Ok(IoLedger::merge_shards(self.disks(), shards))
    }

    /// Flushes only the dirty stripes owned by one partition of the
    /// current [`RaidVolume::partition_map`] — the targeted write barrier
    /// a caller uses to drain range B while a rebuild is parked in range
    /// A. A no-op for partitions with no dirty stripes.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] if a flush cannot be served; the affected
    /// stripe's dirty data stays in the cache for a later retry.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range for the current map.
    pub fn flush_partition(&mut self, partition: usize) -> Result<IoLedger, VolumeError> {
        if self.cache.is_none() {
            return Ok(IoLedger::new(self.disks()));
        }
        let map = self.partition_map();
        assert!(partition < map.len(), "partition {partition} outside partition map");
        self.pipeline.begin_op();
        let shard = self.flush_partition_shard(&map, partition)?;
        Ok(shard.into_ledger())
    }

    /// Flushes the dirty stripes one partition owns, accounting the I/O
    /// into that partition's ledger shard. Each stripe still commits as
    /// its own journal-atomic coalesced op, so splitting a flush at
    /// partition boundaries never splits a stripe's crash-atomic unit.
    fn flush_partition_shard(
        &mut self,
        map: &PartitionMap,
        partition: usize,
    ) -> Result<LedgerShard, VolumeError> {
        let mut shard = LedgerShard::new(partition, self.disks());
        let dirty = self.cache.as_ref().expect("cache enabled").dirty_stripes();
        for stripe in dirty {
            if map.owner_of(stripe) != partition {
                continue;
            }
            shard.merge(&self.flush_stripe(stripe)?);
        }
        Ok(shard)
    }

    /// Flushes one stripe's dirty elements as a single coalesced lowered
    /// op (healthy) or a decode-patch-reencode pair (degraded), with the
    /// volume's standard retry/recovery policy. On success the entry is
    /// marked clean and stays resident; on error the dirty data is
    /// preserved in the cache.
    fn flush_stripe(&mut self, stripe: usize) -> Result<IoLedger, VolumeError> {
        let Some(entry) = self.cache.as_mut().expect("cache enabled").take(stripe) else {
            return Ok(IoLedger::new(self.disks()));
        };
        if !entry.is_dirty() {
            self.cache.as_mut().expect("cache enabled").put_back(stripe, entry);
            return Ok(IoLedger::new(self.disks()));
        }
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let attempt = if self.failed.is_empty() {
                self.try_flush_healthy(stripe, &entry)
            } else {
                self.try_flush_degraded(stripe, &entry)
            };
            match attempt {
                Ok(receipt) => {
                    let mut entry = entry;
                    entry.mark_clean();
                    self.cache.as_mut().expect("cache enabled").put_back(stripe, entry);
                    self.pipeline.ledger_mut().note_cache_flush();
                    self.health.note_op_ok();
                    let mut receipt = receipt;
                    receipt.note_cache_flush();
                    return Ok(receipt);
                }
                Err(VolumeError::Backend(e)) if attempts < MAX_OP_ATTEMPTS => {
                    if let Err(fatal) = self.recover(e) {
                        self.cache.as_mut().expect("cache enabled").put_back(stripe, entry);
                        return Err(fatal);
                    }
                }
                Err(e) => {
                    self.cache.as_mut().expect("cache enabled").put_back(stripe, entry);
                    return Err(e);
                }
            }
        }
    }

    /// One healthy coalesced-flush attempt: every dirty element of the
    /// stripe batched into **one** lowered op through the batched write
    /// planner, so co-located dirty elements share parity I/O and the
    /// whole flush commits atomically under the pipeline's undo journal.
    ///
    /// Mode selection is cache-aware: reconstruct-mode source reads whose
    /// data is resident **clean** in the cache are filled from memory
    /// instead of disk (counted as cache hits), which can flip the
    /// RMW/reconstruct decision in reconstruct's favor.
    fn try_flush_healthy(
        &mut self,
        stripe: usize,
        entry: &crate::cache::StripeEntry,
    ) -> Result<IoLedger, VolumeError> {
        let code = Arc::clone(&self.code);
        let layout = code.layout();
        let rows = layout.rows();
        let data_cells = layout.data_cells();
        let dirty = entry.dirty_ordinals();
        let plan = plan_batched_write(layout, &dirty);
        let cost = write_cost(layout, &plan);

        // Split reconstruct reads into cache fills (clean resident data)
        // and true disk reads.
        let mut cache_fills: Vec<(usize, Cell)> = Vec::new();
        let mut recon_disk_reads: Vec<Cell> = Vec::new();
        for &c in &cost.reconstruct_reads {
            match data_cells.iter().position(|&d| d == c) {
                Some(ord) if entry.is_clean(ord) => cache_fills.push((ord, c)),
                _ => recon_disk_reads.push(c),
            }
        }
        let mode = if cost.reconstruct_reads.is_empty() {
            WriteMode::FullStripe
        } else if recon_disk_reads.len() < cost.rmw_reads.len() {
            WriteMode::Reconstruct
        } else {
            WriteMode::Rmw
        };

        // Scratch: old values in the lower half, new values above.
        let up = |c: Cell| Cell::new(c.row + rows, c.col);
        let mut scratch = Stripe::zeroed(2 * rows, layout.cols(), self.element_size);
        for (&ord, &cell) in dirty.iter().zip(&plan.data_writes) {
            scratch.set_element(up(cell), entry.element(ord));
        }
        let reads: &[Cell] = match mode {
            WriteMode::Rmw => &cost.rmw_reads,
            WriteMode::Reconstruct | WriteMode::FullStripe => {
                // Cache-resident old values land in the lower half just as
                // if they had been read.
                for &(ord, cell) in &cache_fills {
                    scratch.set_element(cell, entry.element(ord));
                }
                &recon_disk_reads
            }
        };

        let steps = batched_write_steps(layout, &plan, mode);
        let op = LoweredOp {
            reads: reads.iter().map(|&c| (c, self.addr_of(stripe, c))).collect(),
            plan: Some(
                XorPlan::from_steps(
                    2 * rows,
                    layout.cols(),
                    steps.iter().map(|(t, s)| (*t, s.as_slice())),
                )
                .optimized(),
            ),
            data_writes: plan
                .data_writes
                .iter()
                .map(|&c| (up(c), self.addr_of(stripe, c)))
                .collect(),
            parity_writes: plan
                .parity_writes
                .iter()
                .map(|&c| (up(c), self.addr_of(stripe, c)))
                .collect(),
        };
        let mut receipt = IoLedger::new(self.disks());
        let rs = self.pipeline.execute(&op, &mut scratch)?;
        receipt.absorb(&rs);
        if mode != WriteMode::Rmw && !cache_fills.is_empty() {
            let n = cache_fills.len() as u64;
            self.pipeline.ledger_mut().note_cache_hits(n);
            receipt.note_cache_hits(n);
        }
        Ok(receipt)
    }

    /// One degraded coalesced-flush attempt, mirroring the degraded write
    /// path: op A decodes the stripe from every surviving element, the
    /// dirty elements are patched into the decoded image, op B re-encodes
    /// and rewrites the surviving columns in one (journal-atomic) op.
    fn try_flush_degraded(
        &mut self,
        stripe: usize,
        entry: &crate::cache::StripeEntry,
    ) -> Result<IoLedger, VolumeError> {
        if self.failed.len() > 2 {
            return Err(VolumeError::TooManyFailures { failed: self.failed.len() });
        }
        let code = Arc::clone(&self.code);
        let layout = code.layout();
        let failed_cols = self.failed_cols(stripe);
        let lost: Vec<Cell> =
            failed_cols.iter().flat_map(|&c| layout.cells_in_col(c)).collect();

        let mut reads = Vec::new();
        for col in 0..layout.cols() {
            if failed_cols.contains(&col) {
                continue;
            }
            for cell in layout.cells_in_col(col) {
                reads.push((cell, self.addr_of(stripe, cell)));
            }
        }
        let decode_plan = decoder::plan_decode(layout, &lost)
            .expect("RAID-6 code repairs up to two columns");
        let fetch = LoweredOp {
            reads,
            plan: Some(XorPlan::compile_decode(layout, &decode_plan).optimized()),
            ..Default::default()
        };
        let mut scratch = Stripe::for_layout(layout, self.element_size);
        let mut receipt = IoLedger::new(self.disks());
        let rs = self.pipeline.execute(&fetch, &mut scratch)?;
        receipt.absorb(&rs);

        let data_cells = layout.data_cells();
        let dirty = entry.dirty_ordinals();
        for &ord in &dirty {
            scratch.set_element(data_cells[ord], entry.element(ord));
        }

        let mut data_writes = Vec::new();
        for &ord in &dirty {
            let cell = data_cells[ord];
            if !failed_cols.contains(&cell.col) {
                data_writes.push((cell, self.addr_of(stripe, cell)));
            }
        }
        let mut parity_writes = Vec::new();
        for col in 0..layout.cols() {
            if failed_cols.contains(&col) {
                continue;
            }
            for parity in layout.parities_in_col(col) {
                parity_writes.push((parity, self.addr_of(stripe, parity)));
            }
        }
        let store = LoweredOp {
            reads: Vec::new(),
            plan: Some(layout.encode_plan().clone()),
            data_writes,
            parity_writes,
        };
        let rs = self.pipeline.execute(&store, &mut scratch)?;
        receipt.absorb(&rs);
        Ok(receipt)
    }

    /// One healthy-write attempt: every segment lowers to a single
    /// RMW/reconstruct pipeline op.
    fn try_write_healthy(
        &mut self,
        start: usize,
        len: usize,
        data: &[u8],
    ) -> Result<IoLedger, VolumeError> {
        let code = Arc::clone(&self.code);
        let layout = code.layout();
        let rows = layout.rows();
        let mut receipt = IoLedger::new(self.disks());
        let mut offset = 0usize;
        for seg in self.addressing.split(start, len) {
            let plan = plan_partial_write(layout, seg.start, seg.len);
            let cost = write_cost(layout, &plan);
            let reads: &[Cell] = match cost.cheaper {
                WriteMode::Rmw => &cost.rmw_reads,
                WriteMode::Reconstruct | WriteMode::FullStripe => &cost.reconstruct_reads,
            };

            // Scratch: old values in the lower half, new values above.
            let up = |c: Cell| Cell::new(c.row + rows, c.col);
            let mut scratch = Stripe::zeroed(2 * rows, layout.cols(), self.element_size);
            for (k, &cell) in plan.data_writes.iter().enumerate() {
                let at = (offset + k) * self.element_size;
                scratch.set_element(up(cell), &data[at..at + self.element_size]);
            }

            let steps = batched_write_steps(layout, &plan, cost.cheaper);

            let op = LoweredOp {
                reads: reads.iter().map(|&c| (c, self.addr_of(seg.stripe, c))).collect(),
                plan: Some(XorPlan::from_steps(
                    2 * rows,
                    layout.cols(),
                    steps.iter().map(|(t, s)| (*t, s.as_slice())),
                )),
                data_writes: plan
                    .data_writes
                    .iter()
                    .map(|&c| (up(c), self.addr_of(seg.stripe, c)))
                    .collect(),
                parity_writes: plan
                    .parity_writes
                    .iter()
                    .map(|&c| (up(c), self.addr_of(seg.stripe, c)))
                    .collect(),
            };
            let rs = self.pipeline.execute(&op, &mut scratch)?;
            receipt.absorb(&rs);
            offset += seg.len;
        }
        Ok(receipt)
    }

    /// One degraded-write attempt per the reconstruct-patch-reencode
    /// strategy: op A decodes the stripe from every surviving element, op
    /// B re-encodes and rewrites the surviving columns.
    fn try_write_degraded(
        &mut self,
        start: usize,
        len: usize,
        data: &[u8],
    ) -> Result<IoLedger, VolumeError> {
        if self.failed.len() > 2 {
            return Err(VolumeError::TooManyFailures { failed: self.failed.len() });
        }
        let code = Arc::clone(&self.code);
        let layout = code.layout();
        let mut receipt = IoLedger::new(self.disks());
        let mut offset = 0usize;
        for seg in self.addressing.split(start, len) {
            let failed_cols = self.failed_cols(seg.stripe);
            let lost: Vec<Cell> =
                failed_cols.iter().flat_map(|&c| layout.cells_in_col(c)).collect();

            // Op A: fetch every surviving element, decode the lost ones.
            let mut reads = Vec::new();
            for col in 0..layout.cols() {
                if failed_cols.contains(&col) {
                    continue;
                }
                for cell in layout.cells_in_col(col) {
                    reads.push((cell, self.addr_of(seg.stripe, cell)));
                }
            }
            let decode_plan = decoder::plan_decode(layout, &lost)
                .expect("RAID-6 code repairs up to two columns");
            let fetch = LoweredOp {
                reads,
                plan: Some(XorPlan::compile_decode(layout, &decode_plan).optimized()),
                ..Default::default()
            };
            let mut scratch = Stripe::for_layout(layout, self.element_size);
            let rs = self.pipeline.execute(&fetch, &mut scratch)?;
            receipt.absorb(&rs);

            // Patch the data elements in the decoded image.
            let cells = &layout.data_cells()[seg.start..seg.start + seg.len];
            for (k, &cell) in cells.iter().enumerate() {
                let at = (offset + k) * self.element_size;
                scratch.set_element(cell, &data[at..at + self.element_size]);
            }

            // Op B: re-encode and store the surviving columns; failed
            // columns stay lost until the next rebuild.
            let mut data_writes = Vec::new();
            for &cell in cells {
                if !failed_cols.contains(&cell.col) {
                    data_writes.push((cell, self.addr_of(seg.stripe, cell)));
                }
            }
            let mut parity_writes = Vec::new();
            for col in 0..layout.cols() {
                if failed_cols.contains(&col) {
                    continue;
                }
                for parity in layout.parities_in_col(col) {
                    parity_writes.push((parity, self.addr_of(seg.stripe, parity)));
                }
            }
            let store = LoweredOp {
                reads: Vec::new(),
                plan: Some(layout.encode_plan().clone()),
                data_writes,
                parity_writes,
            };
            let rs = self.pipeline.execute(&store, &mut scratch)?;
            receipt.absorb(&rs);
            offset += seg.len;
        }
        Ok(receipt)
    }

    /// Reads `len` data elements starting at `start`, serving through
    /// reconstruction when requested elements live on failed disks (the
    /// degraded read of the paper's Section V-B).
    ///
    /// Returns the bytes and the operation's I/O ledger;
    /// `ledger.total_reads()` is the paper's `L'`.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] on bad ranges or unsurvivable failures.
    pub fn read(&mut self, start: usize, len: usize) -> Result<(Vec<u8>, IoLedger), VolumeError> {
        self.check_range(start, len)?;
        self.pipeline.begin_op();
        if self.cache.is_some() {
            return self.read_cached(start, len);
        }
        self.read_retrying(start, len)
    }

    /// The uncached read loop: one [`RaidVolume::try_read`] attempt per
    /// recovery-policy round.
    fn read_retrying(
        &mut self,
        start: usize,
        len: usize,
    ) -> Result<(Vec<u8>, IoLedger), VolumeError> {
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            match self.try_read(start, len) {
                Err(VolumeError::Backend(e)) if attempts < MAX_OP_ATTEMPTS => {
                    self.recover(e)?;
                }
                other => {
                    if other.is_ok() {
                        self.health.note_op_ok();
                    }
                    return other;
                }
            }
        }
    }

    /// A read through the stripe cache: resident elements (dirty or
    /// clean) are served from memory as hits; missing runs go through the
    /// normal (possibly degraded) read path and populate the cache
    /// read-through as clean copies. Dirty elements are always served
    /// from the cache — the disks hold their pre-flush values.
    fn read_cached(
        &mut self,
        start: usize,
        len: usize,
    ) -> Result<(Vec<u8>, IoLedger), VolumeError> {
        let es = self.element_size;
        let per = self.addressing.data_per_stripe();
        let mut out = vec![0u8; len * es];
        let mut receipt = IoLedger::new(self.disks());
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut offset = 0usize;
        for seg in self.addressing.split(start, len) {
            self.cache.as_mut().expect("cached read needs a cache").promote(seg.stripe);
            let mut k = 0usize;
            while k < seg.len {
                let resident = |v: &Self, i: usize| {
                    v.cache
                        .as_ref()
                        .expect("cache enabled")
                        .get(seg.stripe)
                        .is_some_and(|e| e.is_present(seg.start + i))
                };
                if resident(self, k) {
                    let entry = self
                        .cache
                        .as_ref()
                        .expect("cache enabled")
                        .get(seg.stripe)
                        .expect("resident implies entry");
                    let at = (offset + k) * es;
                    out[at..at + es].copy_from_slice(entry.element(seg.start + k));
                    hits += 1;
                    k += 1;
                    continue;
                }
                // A run of non-resident elements: fetch through the
                // normal lowering, then fill the cache read-through.
                let run_start = k;
                while k < seg.len && !resident(self, k) {
                    k += 1;
                }
                let run_len = k - run_start;
                let linear = seg.stripe * per + seg.start + run_start;
                let (bytes, rs) = self.read_retrying(linear, run_len)?;
                let at = (offset + run_start) * es;
                out[at..at + run_len * es].copy_from_slice(&bytes);
                receipt.merge(&rs);
                misses += run_len as u64;
                let entry =
                    self.cache.as_mut().expect("cache enabled").ensure(seg.stripe);
                for i in 0..run_len {
                    entry.fill(seg.start + run_start + i, &bytes[i * es..(i + 1) * es]);
                }
            }
            offset += seg.len;
        }
        self.pipeline.ledger_mut().note_cache_hits(hits);
        self.pipeline.ledger_mut().note_cache_misses(misses);
        receipt.note_cache_hits(hits);
        receipt.note_cache_misses(misses);
        receipt.merge(&self.enforce_cache_budget()?);
        Ok((out, receipt))
    }

    fn try_read(&mut self, start: usize, len: usize) -> Result<(Vec<u8>, IoLedger), VolumeError> {
        let code = Arc::clone(&self.code);
        let layout = code.layout();
        let mut receipt = IoLedger::new(self.disks());
        let mut out = Vec::with_capacity(len * self.element_size);

        for seg in self.addressing.split(start, len) {
            let requested: Vec<Cell> =
                layout.data_cells()[seg.start..seg.start + seg.len].to_vec();
            let failed_cols = self.failed_cols(seg.stripe);
            let any_lost = requested.iter().any(|c| failed_cols.contains(&c.col));

            let op = if !any_lost {
                LoweredOp::read_only(
                    requested.iter().map(|&c| (c, self.addr_of(seg.stripe, c))).collect(),
                )
            } else {
                match failed_cols.len() {
                    1 => {
                        let plan = plan_degraded_read(layout, failed_cols[0], &requested);
                        LoweredOp {
                            reads: plan
                                .fetched
                                .iter()
                                .map(|&c| (c, self.addr_of(seg.stripe, c)))
                                .collect(),
                            plan: Some(compile_chain_repairs(layout, &plan.repairs)),
                            ..Default::default()
                        }
                    }
                    2 => {
                        // Double-degraded read: reconstruct only the
                        // requested cells' dependency slice.
                        let plan = plan_degraded_read_multi(layout, &failed_cols, &requested)
                            .expect("RAID-6 code repairs any two columns");
                        LoweredOp {
                            reads: plan
                                .fetched
                                .iter()
                                .map(|&c| (c, self.addr_of(seg.stripe, c)))
                                .collect(),
                            plan: Some(
                                XorPlan::from_steps(
                                    layout.rows(),
                                    layout.cols(),
                                    plan.steps.iter().map(|s| (s.target, s.sources.as_slice())),
                                )
                                .optimized(),
                            ),
                            ..Default::default()
                        }
                    }
                    n => return Err(VolumeError::TooManyFailures { failed: n }),
                }
            };
            let mut scratch = Stripe::for_layout(layout, self.element_size);
            let rs = self.pipeline.execute(&op, &mut scratch)?;
            receipt.absorb(&rs);
            for &cell in &requested {
                out.extend_from_slice(scratch.element(cell));
            }
        }
        Ok((out, receipt))
    }

    /// Rebuilds every failed disk onto a blank spare (single-disk hybrid
    /// recovery or generic double-disk decode) and marks the array
    /// healthy. An in-flight background rebuild is driven to completion
    /// first; progress is checkpointed per stripe, so a crash mid-rebuild
    /// resumes where it stopped on reopen.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::TooManyFailures`] if more than two disks are
    /// failed (cannot happen through this API).
    pub fn rebuild(&mut self) -> Result<IoLedger, VolumeError> {
        let mut receipt = IoLedger::new(self.disks());
        loop {
            if self.rebuild_task.is_none() {
                let failed: Vec<usize> = self.failed.iter().copied().collect();
                if failed.is_empty() {
                    return Ok(receipt);
                }
                if failed.len() > 2 {
                    return Err(VolumeError::TooManyFailures { failed: failed.len() });
                }
                self.start_rebuild(failed)?;
            }
            let rs = self.rebuild_step(usize::MAX)?;
            receipt.merge(&rs);
        }
    }

    /// Drives the background healer: starts a spare-consuming rebuild if
    /// one is warranted and none is active, then rebuilds up to `budget`
    /// stripes. Call repeatedly (e.g. between foreground operations) to
    /// amortize rebuild I/O. Returns the step's I/O ledger — empty when
    /// there is nothing to do.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] on backend errors or unsurvivable failures.
    pub fn maintain(&mut self, budget: usize) -> Result<IoLedger, VolumeError> {
        if self.rebuild_task.is_none() {
            if self.auto_heal && !self.failed.is_empty() && self.spares > 0 {
                self.start_spare_rebuild()?;
            }
            if self.rebuild_task.is_none() {
                return Ok(IoLedger::new(self.disks()));
            }
        }
        self.rebuild_step(budget)
    }

    /// Starts a background rebuild for as many failed disks as the spare
    /// pool covers, consuming the spares. No-op if the pool is empty or
    /// nothing is failed.
    fn start_spare_rebuild(&mut self) -> Result<(), VolumeError> {
        let failed: Vec<usize> = self.failed.iter().copied().collect();
        let take = self.spares.min(failed.len());
        if take == 0 || self.rebuild_task.is_some() {
            return Ok(());
        }
        let chosen = failed[..take].to_vec();
        self.spares -= take;
        if let Err(e) = self.start_rebuild(chosen) {
            self.spares += take;
            return Err(e);
        }
        Ok(())
    }

    /// Registers a rebuild task for `disks`: the checkpoint is persisted
    /// *before* the blank spares are swapped in, so a crash between the
    /// two steps is detected on reopen (the checkpointed disk is still
    /// backend-failed) and the swap replayed rather than the half-zeroed
    /// spare trusted.
    fn start_rebuild(&mut self, disks: Vec<usize>) -> Result<(), VolumeError> {
        let cp = RebuildCheckpoint { disks: disks.clone(), next_stripe: 0 };
        self.pipeline.backend_mut().save_checkpoint(Some(&cp))?;
        self.swap_in_spares(&disks)?;
        for &d in &disks {
            self.health.note_replaced(d);
        }
        self.rebuild_task = Some(RebuildTask { disks, next_stripe: 0 });
        Ok(())
    }

    /// Rebuilds up to `budget` stripes of the active task, persisting the
    /// checkpoint after each stripe and finishing the task (failed set,
    /// checkpoint, health) when the last stripe lands. Errors during a
    /// stripe go through the recovery policy — a fault can reset or
    /// extend the task mid-step, which is why the task state is re-read
    /// every iteration.
    pub fn rebuild_step(&mut self, budget: usize) -> Result<IoLedger, VolumeError> {
        self.pipeline.begin_op();
        let mut receipt = IoLedger::new(self.disks());
        let mut done = 0usize;
        let mut attempts = 0usize;
        while done < budget {
            let Some(task) = self.rebuild_task.as_ref() else { break };
            if task.next_stripe >= self.stripes {
                self.finish_rebuild()?;
                break;
            }
            let idx = task.next_stripe;
            let disks = task.disks.clone();
            attempts += 1;
            match self.rebuild_one_stripe(idx, &disks) {
                Ok(rs) => {
                    receipt.merge(&rs);
                    self.health.note_op_ok();
                    attempts = 0;
                    done += 1;
                    let task = self.rebuild_task.as_mut().expect("task active");
                    task.next_stripe = idx + 1;
                    let cp = RebuildCheckpoint {
                        disks: task.disks.clone(),
                        next_stripe: idx + 1,
                    };
                    self.pipeline.backend_mut().save_checkpoint(Some(&cp))?;
                    if idx + 1 >= self.stripes {
                        self.finish_rebuild()?;
                        break;
                    }
                }
                Err(VolumeError::Backend(e)) => {
                    if attempts >= MAX_OP_ATTEMPTS {
                        return Err(VolumeError::Backend(e));
                    }
                    self.recover(e)?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(receipt)
    }

    /// The active task's disks hold valid data now: drop them from the
    /// failed set, clear the persisted checkpoint, update health.
    fn finish_rebuild(&mut self) -> Result<(), VolumeError> {
        let Some(task) = self.rebuild_task.take() else { return Ok(()) };
        for d in &task.disks {
            self.failed.remove(d);
        }
        self.pipeline.backend_mut().save_checkpoint(None)?;
        self.note_health();
        Ok(())
    }

    /// Rebuilds one stripe's worth of the task disks: decode over *all*
    /// failed columns (a second dead disk that is not being rebuilt still
    /// shapes the decode), write back only the task disks' columns. A
    /// single failed column uses the paper's hybrid minimum-read recovery
    /// plan; two use the generic decoder.
    fn rebuild_one_stripe(
        &mut self,
        idx: usize,
        task_disks: &[usize],
    ) -> Result<IoLedger, VolumeError> {
        let code = Arc::clone(&self.code);
        let layout = code.layout();
        let write_cols: BTreeSet<usize> = task_disks
            .iter()
            .map(|&d| self.addressing.logical_col(idx, d))
            .collect();
        let failed_cols = self.failed_cols(idx);
        let mut receipt = IoLedger::new(self.disks());

        let (reads, plan) = if failed_cols.len() == 1 {
            let plan = plan_single_disk_recovery(layout, failed_cols[0], SearchStrategy::Auto);
            let reads: Vec<(Cell, DiskAddr)> =
                plan.reads.iter().map(|&c| (c, self.addr_of(idx, c))).collect();
            (reads, compile_chain_repairs(layout, &plan.choices))
        } else {
            let lost: Vec<Cell> =
                failed_cols.iter().flat_map(|&c| layout.cells_in_col(c)).collect();
            let decode_plan = decoder::plan_decode(layout, &lost)
                .map_err(|_| VolumeError::TooManyFailures { failed: failed_cols.len() })?;
            let mut reads = Vec::new();
            for col in 0..layout.cols() {
                if failed_cols.contains(&col) {
                    continue;
                }
                for cell in layout.cells_in_col(col) {
                    reads.push((cell, self.addr_of(idx, cell)));
                }
            }
            (reads, XorPlan::compile_decode(layout, &decode_plan).optimized())
        };

        let mut data_writes = Vec::new();
        let mut parity_writes = Vec::new();
        for &col in &write_cols {
            for cell in layout.cells_in_col(col) {
                let target = (cell, self.addr_of(idx, cell));
                if layout.is_data(cell) {
                    data_writes.push(target);
                } else {
                    parity_writes.push(target);
                }
            }
        }
        let op = LoweredOp { reads, plan: Some(plan), data_writes, parity_writes };
        let mut scratch = Stripe::for_layout(layout, self.element_size);
        let rs = self.pipeline.execute(&op, &mut scratch)?;
        receipt.absorb(&rs);
        Ok(receipt)
    }

    /// Swaps blank spares in for the given disks (backend `replace` +
    /// simulator restore) so the rebuild can stream writes to them.
    fn swap_in_spares(&mut self, disks: &[usize]) -> Result<(), VolumeError> {
        for &d in disks {
            self.pipeline.backend_mut().replace(d)?;
            if let Some(sim) = self.pipeline.sim_mut() {
                let _ = sim.restore_disk(d);
            }
        }
        Ok(())
    }

    /// Recomputes every parity of every stripe through the pipeline, with
    /// the XOR kernels running on up to `threads` workers (the batch
    /// executor). Requires a healthy array.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::TooManyFailures`] if any disk is failed, or
    /// a backend error.
    pub fn encode_all(&mut self, threads: usize) -> Result<IoLedger, VolumeError> {
        if !self.failed.is_empty() {
            return Err(VolumeError::TooManyFailures { failed: self.failed.len() });
        }
        self.pipeline.begin_op();
        let code = Arc::clone(&self.code);
        let layout = code.layout();

        // One lowered op per stripe — data reads, the cached encode plan,
        // all parity writes — submitted as a single partitioned batch.
        let parities: Vec<Cell> = (0..layout.cols())
            .flat_map(|col| layout.parities_in_col(col))
            .collect();
        let mut ops = Vec::with_capacity(self.stripes);
        let mut scratches = Vec::with_capacity(self.stripes);
        for idx in 0..self.stripes {
            ops.push(LoweredOp {
                reads: layout.data_cells().iter().map(|&c| (c, self.addr_of(idx, c))).collect(),
                plan: Some(layout.encode_plan().clone()),
                parity_writes: parities.iter().map(|&c| (c, self.addr_of(idx, c))).collect(),
                ..Default::default()
            });
            scratches.push(Stripe::for_layout(layout, self.element_size));
        }
        let map = self.map_for(threads);
        let (_, shards) = self.pipeline.execute_batch(&ops, &mut scratches, &map, threads)?;
        Ok(IoLedger::merge_shards(self.disks(), shards))
    }

    /// Rebuilds every failed disk like [`RaidVolume::rebuild`], but runs
    /// the decode kernels on up to `threads` workers: surviving elements
    /// are fetched per stripe, decoded in parallel, and the lost columns
    /// streamed back — all through the same pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::TooManyFailures`] beyond tolerance, or a
    /// backend error.
    pub fn rebuild_all(&mut self, threads: usize) -> Result<IoLedger, VolumeError> {
        self.pipeline.begin_op();
        let failed: Vec<usize> = self.failed.iter().copied().collect();
        let mut receipt = IoLedger::new(self.disks());
        if failed.is_empty() {
            return Ok(receipt);
        }
        if failed.len() > 2 {
            return Err(VolumeError::TooManyFailures { failed: failed.len() });
        }
        self.swap_in_spares(&failed)?;
        let code = Arc::clone(&self.code);
        let layout = code.layout();

        // One lowered op per stripe — surviving-cell reads, the decode
        // plan for that stripe's lost-column pattern, lost-column writes —
        // submitted as a single partitioned batch. Decode plans are
        // compiled once per pattern (with rotation the failed disks land
        // on different logical columns per stripe).
        let mut plan_cache: std::collections::BTreeMap<Vec<usize>, XorPlan> =
            std::collections::BTreeMap::new();
        let mut ops = Vec::with_capacity(self.stripes);
        let mut scratches = Vec::with_capacity(self.stripes);
        for idx in 0..self.stripes {
            let mut lost_cols: Vec<usize> =
                failed.iter().map(|&d| self.addressing.logical_col(idx, d)).collect();
            lost_cols.sort_unstable();
            let plan = plan_cache
                .entry(lost_cols.clone())
                .or_insert_with(|| {
                    let lost: Vec<Cell> =
                        lost_cols.iter().flat_map(|&c| layout.cells_in_col(c)).collect();
                    let decode_plan = decoder::plan_decode(layout, &lost)
                        .expect("RAID-6 code repairs up to two columns");
                    XorPlan::compile_decode(layout, &decode_plan).optimized()
                })
                .clone();
            let mut reads = Vec::new();
            let mut data_writes = Vec::new();
            let mut parity_writes = Vec::new();
            for col in 0..layout.cols() {
                if lost_cols.contains(&col) {
                    for cell in layout.cells_in_col(col) {
                        let target = (cell, self.addr_of(idx, cell));
                        if layout.is_data(cell) {
                            data_writes.push(target);
                        } else {
                            parity_writes.push(target);
                        }
                    }
                } else {
                    for cell in layout.cells_in_col(col) {
                        reads.push((cell, self.addr_of(idx, cell)));
                    }
                }
            }
            ops.push(LoweredOp { reads, plan: Some(plan), data_writes, parity_writes });
            scratches.push(Stripe::for_layout(layout, self.element_size));
        }
        let map = self.map_for(threads);
        let (_, shards) = self.pipeline.execute_batch(&ops, &mut scratches, &map, threads)?;
        receipt.merge(&IoLedger::merge_shards(self.disks(), shards));
        self.failed.clear();
        // The batch rebuild covered everything, superseding any
        // checkpointed background task.
        self.rebuild_task = None;
        self.pipeline.backend_mut().save_checkpoint(None)?;
        self.note_health();
        Ok(receipt)
    }

    /// Verifies every stripe's parity consistency through unaccounted
    /// maintenance reads. A degraded array never verifies.
    pub fn verify_all(&mut self) -> bool {
        if !self.failed.is_empty() {
            return false;
        }
        let code = Arc::clone(&self.code);
        let layout = code.layout();
        for idx in 0..self.stripes {
            match self.load_stripe_unaccounted(idx) {
                Ok(s) => {
                    if s.verify(layout).is_some() {
                        return false;
                    }
                }
                Err(_) => return false,
            }
        }
        true
    }

    /// Reads one whole stripe directly from the backend without touching
    /// the ledger or simulator (maintenance traffic).
    fn load_stripe_unaccounted(&mut self, idx: usize) -> Result<Stripe, DiskError> {
        let code = Arc::clone(&self.code);
        let layout = code.layout();
        let mut s = Stripe::for_layout(layout, self.element_size);
        for row in 0..layout.rows() {
            for col in 0..layout.cols() {
                let cell = Cell::new(row, col);
                let a = self.addr_of(idx, cell);
                self.pipeline.backend_mut().read(a.disk, a.index, s.element_mut(cell))?;
            }
        }
        Ok(s)
    }

    /// Scrubs every stripe through the pipeline: all elements are fetched
    /// (accounted reads), silently corrupted elements are localized from
    /// the pattern of violated parity chains (see [`raid_core::scrub`]),
    /// and repairs are written back. Requires a healthy array — scrubbing
    /// a degraded volume cannot distinguish corruption from loss.
    ///
    /// Returns one report per stripe that was *not* clean.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::TooManyFailures`] if any disk is failed.
    pub fn scrub(&mut self) -> Result<Vec<(usize, raid_core::scrub::ScrubReport)>, VolumeError> {
        if !self.failed.is_empty() {
            return Err(VolumeError::TooManyFailures { failed: self.failed.len() });
        }
        self.pipeline.begin_op();
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            match self.try_scrub() {
                Err(VolumeError::Backend(e)) if attempts < MAX_OP_ATTEMPTS => {
                    self.recover(e)?;
                    // Recovery may have degraded the array; scrubbing a
                    // degraded volume cannot tell corruption from loss.
                    if !self.failed.is_empty() {
                        return Err(VolumeError::TooManyFailures { failed: self.failed.len() });
                    }
                }
                other => {
                    if other.is_ok() {
                        self.health.note_op_ok();
                    }
                    return other;
                }
            }
        }
    }

    /// One scrub attempt over every stripe (retried by [`RaidVolume::scrub`]).
    fn try_scrub(&mut self) -> Result<Vec<(usize, raid_core::scrub::ScrubReport)>, VolumeError> {
        let code = Arc::clone(&self.code);
        let layout = code.layout();
        let mut findings = Vec::new();
        for idx in 0..self.stripes {
            let mut reads = Vec::new();
            for row in 0..layout.rows() {
                for col in 0..layout.cols() {
                    let cell = Cell::new(row, col);
                    reads.push((cell, self.addr_of(idx, cell)));
                }
            }
            let op = LoweredOp::read_only(reads);
            let mut scratch = Stripe::for_layout(layout, self.element_size);
            self.pipeline.execute(&op, &mut scratch)?;
            let report = raid_core::scrub::scrub(&mut scratch, layout);
            match &report {
                raid_core::scrub::ScrubReport::Clean => {}
                raid_core::scrub::ScrubReport::Repaired { cell } => {
                    let target = (*cell, self.addr_of(idx, *cell));
                    let repair = if layout.is_data(*cell) {
                        LoweredOp { data_writes: vec![target], ..Default::default() }
                    } else {
                        LoweredOp { parity_writes: vec![target], ..Default::default() }
                    };
                    self.pipeline.execute(&repair, &mut scratch)?;
                    findings.push((idx, report));
                }
                raid_core::scrub::ScrubReport::Unlocalizable { .. } => {
                    findings.push((idx, report));
                }
            }
        }
        Ok(findings)
    }

    /// Migrates every data element onto a fresh in-memory volume built on
    /// a different (or identical) code — the restriping path used when an
    /// operator changes coding schemes. The source may be degraded (data
    /// is recovered on the fly through degraded reads); the target is
    /// sized with exactly enough stripes.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] if the source is beyond its failure
    /// tolerance.
    pub fn migrate_to(&mut self, code: Arc<dyn ArrayCode>) -> Result<RaidVolume, VolumeError> {
        let elements = self.data_elements();
        let per_stripe = code.layout().num_data_cells();
        let stripes = elements.div_ceil(per_stripe);
        let mut target = RaidVolume::with_rotation(
            code,
            stripes,
            self.element_size,
            self.addressing.rotates(),
        );
        // Stream stripe-sized extents; degraded sources reconstruct as
        // they go.
        let chunk = per_stripe.max(1);
        let mut at = 0usize;
        while at < elements {
            let n = chunk.min(elements - at);
            let (bytes, _) = self.read(at, n)?;
            target.write(at, &bytes)?;
            at += n;
        }
        Ok(target)
    }

    /// Corrupts one byte of an element — test/chaos-engineering hook used
    /// by the scrub example and the failure-injection tests. Bypasses the
    /// pipeline (corruption is not I/O the controller issued).
    ///
    /// # Panics
    ///
    /// Panics if the stripe index or cell is out of range, or the target
    /// disk cannot serve the tampering.
    pub fn inject_corruption(&mut self, stripe: usize, cell: Cell, byte: usize) {
        assert!(stripe < self.stripes, "stripe out of range");
        // Tampering changes the disks behind the cache's back: a clean
        // cached copy of the cell no longer matches and must be dropped
        // (a dirty copy still supersedes the disks and stays).
        if let Some(cache) = &mut self.cache {
            let ord = self.code.layout().data_cells().iter().position(|&c| c == cell);
            if let (Some(ord), Some(entry)) = (ord, cache.take(stripe)) {
                let mut entry = entry;
                entry.invalidate_clean(ord);
                cache.put_back(stripe, entry);
            }
        }
        let a = self.addr_of(stripe, cell);
        let mut buf = vec![0u8; self.element_size];
        self.pipeline
            .backend_mut()
            .read(a.disk, a.index, &mut buf)
            .expect("corruption target must be readable");
        let at = byte % buf.len();
        buf[at] ^= 0x80;
        self.pipeline
            .backend_mut()
            .write(a.disk, a.index, &buf)
            .expect("corruption target must be writable");
    }

    fn check_range(&self, start: usize, len: usize) -> Result<(), VolumeError> {
        if start + len > self.data_elements() {
            return Err(VolumeError::OutOfRange { start, len, capacity: self.data_elements() });
        }
        Ok(())
    }
}

impl Drop for RaidVolume {
    /// Best-effort drop barrier: dirty cached stripes are flushed so a
    /// clean shutdown loses nothing. Errors are swallowed — a crashed
    /// backend cannot accept the flush, and the undo journal already
    /// guarantees no *partial* flush is visible after reopen.
    fn drop(&mut self) {
        if self.cache.as_ref().is_some_and(|c| c.dirty_count() > 0) {
            let _ = self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_code::HvCode;
    use raid_baselines::{HCode, RdpCode, XCode};

    fn volume(rotate: bool) -> RaidVolume {
        RaidVolume::with_rotation(Arc::new(HvCode::new(7).unwrap()), 4, 16, rotate)
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
    }

    #[test]
    fn write_read_round_trip() {
        let mut v = volume(false);
        let buf = pattern(5 * 16, 3);
        let receipt = v.write(7, &buf).unwrap();
        assert_eq!(receipt.data_writes(), 5);
        assert!(receipt.parity_writes() > 0);
        assert!(v.verify_all(), "incremental parity update must match re-encode");
        let (out, _) = v.read(7, 5).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn writes_crossing_stripes_stay_consistent() {
        let mut v = volume(false);
        let per_stripe = v.addressing.data_per_stripe();
        let buf = pattern(6 * 16, 9);
        v.write(per_stripe - 3, &buf).unwrap();
        assert!(v.verify_all());
        let (out, _) = v.read(per_stripe - 3, 6).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn degraded_read_returns_true_bytes() {
        let mut v = volume(false);
        let buf = pattern(10 * 16, 5);
        v.write(0, &buf).unwrap();
        for disk in 0..v.disks() {
            let mut broken = volume(false);
            broken.write(0, &buf).unwrap();
            broken.fail_disk(disk).unwrap();
            let (out, receipt) = broken.read(0, 10).unwrap();
            assert_eq!(out, buf, "disk {disk}");
            assert!(receipt.total_reads() >= 10, "disk {disk}");
        }
    }

    #[test]
    fn double_failure_rebuild_restores_everything() {
        let mut v = volume(false);
        let buf = pattern(v.data_elements() * 16, 7);
        v.write(0, &buf).unwrap();
        v.fail_disk(1).unwrap();
        v.fail_disk(4).unwrap();
        let receipt = v.rebuild().unwrap();
        assert!(receipt.total_writes() > 0);
        assert!(v.verify_all());
        let (out, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn single_failure_rebuild_uses_hybrid_plan() {
        let mut v = volume(false);
        let buf = pattern(v.data_elements() * 16, 11);
        v.write(0, &buf).unwrap();
        v.fail_disk(3).unwrap();
        let receipt = v.rebuild().unwrap();
        assert!(v.verify_all());
        let (out, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(out, buf);
        // Hybrid recovery reads fewer elements than fetching everything.
        let all = (v.disks() - 1) * v.code.layout().rows() * 4;
        assert!((receipt.total_reads() as usize) < all);
    }

    #[test]
    fn rotation_preserves_correctness() {
        let mut v = volume(true);
        let buf = pattern(v.data_elements() * 16, 13);
        v.write(0, &buf).unwrap();
        v.fail_disk(2).unwrap();
        let (out, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(out, buf);
        v.rebuild().unwrap();
        assert!(v.verify_all());
    }

    #[test]
    fn works_across_codes() {
        let codes: Vec<Arc<dyn ArrayCode>> = vec![
            Arc::new(HvCode::new(7).unwrap()),
            Arc::new(RdpCode::new(7).unwrap()),
            Arc::new(XCode::new(7).unwrap()),
            Arc::new(HCode::new(7).unwrap()),
        ];
        for code in codes {
            let name = code.name().to_string();
            let mut v = RaidVolume::in_memory(code, 3, 8);
            let buf = pattern(v.data_elements() * 8, 17);
            v.write(0, &buf).unwrap();
            assert!(v.verify_all(), "{name}");
            v.fail_disk(0).unwrap();
            v.fail_disk(2).unwrap();
            v.rebuild().unwrap();
            let (out, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(out, buf, "{name}");
        }
    }

    #[test]
    fn error_paths() {
        let mut v = volume(false);
        assert!(matches!(
            v.read(v.data_elements(), 1),
            Err(VolumeError::OutOfRange { .. })
        ));
        assert!(matches!(
            v.write(0, &[1, 2, 3]),
            Err(VolumeError::BadBufferLength { .. })
        ));
        assert!(matches!(v.fail_disk(99), Err(VolumeError::NoSuchDisk { disk: 99 })));
        v.fail_disk(0).unwrap();
        v.fail_disk(1).unwrap();
        assert!(matches!(v.fail_disk(2), Err(VolumeError::TooManyFailures { .. })));
    }

    #[test]
    fn degraded_writes_survive_rebuild() {
        for failures in [vec![3usize], vec![0, 4]] {
            let mut v = volume(false);
            let initial = pattern(v.data_elements() * 16, 21);
            v.write(0, &initial).unwrap();
            for &d in &failures {
                v.fail_disk(d).unwrap();
            }

            // Overwrite a window while degraded.
            let patch = pattern(9 * 16, 99);
            let receipt = v.write(5, &patch).unwrap();
            assert!(receipt.total_reads() > 0 && receipt.total_writes() > 0);

            // Degraded read sees the new bytes immediately.
            let (now, _) = v.read(5, 9).unwrap();
            assert_eq!(now, patch, "degraded read after degraded write");

            // Rebuild materializes the failed disks consistently.
            v.rebuild().unwrap();
            assert!(v.verify_all(), "failures {failures:?}");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            let mut expect = initial.clone();
            expect[5 * 16..14 * 16].copy_from_slice(&patch);
            assert_eq!(bytes, expect, "failures {failures:?}");
        }
    }

    #[test]
    fn double_degraded_small_reads_fetch_a_slice_not_everything() {
        let mut v = volume(false);
        let data = pattern(v.data_elements() * 16, 41);
        v.write(0, &data).unwrap();
        v.fail_disk(0).unwrap();
        v.fail_disk(3).unwrap();
        v.reset_ledger();
        // Read one element that lives on a failed disk.
        let lost_ordinal = v
            .code()
            .layout()
            .data_cells()
            .iter()
            .position(|c| c.col == 0)
            .unwrap();
        let (bytes, receipt) = v.read(lost_ordinal, 1).unwrap();
        assert_eq!(bytes, data[lost_ordinal * 16..(lost_ordinal + 1) * 16]);
        // Full scan would read (disks − 2) × rows = 4 × 6 = 24 elements;
        // the targeted slice must be strictly cheaper.
        let full_scan = (v.disks() - 2) * v.code().layout().rows();
        assert!(
            (receipt.total_reads() as usize) < full_scan,
            "targeted read used {} reads, full scan is {full_scan}",
            receipt.total_reads()
        );
    }

    #[test]
    fn scrub_finds_and_fixes_injected_corruption() {
        let mut v = volume(false);
        let data = pattern(v.data_elements() * 16, 31);
        v.write(0, &data).unwrap();
        assert!(v.scrub().unwrap().is_empty(), "clean volume must scrub clean");

        v.inject_corruption(1, Cell::new(2, 3), 7);
        v.inject_corruption(3, Cell::new(0, 0), 0);
        assert!(!v.verify_all());
        let findings = v.scrub().unwrap();
        assert_eq!(findings.len(), 2);
        for (stripe, report) in &findings {
            assert!(
                matches!(report, raid_core::scrub::ScrubReport::Repaired { .. }),
                "stripe {stripe}: {report:?}"
            );
        }
        assert!(v.verify_all());
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data);
    }

    #[test]
    fn scrub_requires_healthy_array() {
        let mut v = volume(false);
        v.fail_disk(0).unwrap();
        assert!(matches!(v.scrub(), Err(VolumeError::TooManyFailures { .. })));
    }

    #[test]
    fn migration_between_codes_preserves_data() {
        let mut src = volume(false); // HV p=7
        let data = pattern(src.data_elements() * 16, 61);
        src.write(0, &data).unwrap();

        // Migrate to RDP — even while the source is degraded.
        src.fail_disk(2).unwrap();
        let mut dst = src
            .migrate_to(Arc::new(RdpCode::new(5).unwrap()))
            .unwrap();
        assert!(dst.verify_all());
        assert!(dst.data_elements() >= src.data_elements());
        let (bytes, _) = dst.read(0, src.data_elements()).unwrap();
        assert_eq!(bytes, data);

        // And back to HV.
        let mut back = dst.migrate_to(Arc::new(HvCode::new(7).unwrap())).unwrap();
        let (bytes, _) = back.read(0, src.data_elements()).unwrap();
        assert_eq!(&bytes[..data.len()], &data[..]);
    }

    #[test]
    fn ledger_accumulates_and_resets() {
        let mut v = volume(false);
        v.write(0, &pattern(3 * 16, 1)).unwrap();
        assert!(v.ledger().total_writes() > 0);
        assert!(v.ledger().total_reads() > 0);
        v.reset_ledger();
        assert_eq!(v.ledger().total(), 0);
    }

    #[test]
    fn encode_all_keeps_consistency_and_accounts_io() {
        let mut v = volume(false);
        let data = pattern(v.data_elements() * 16, 77);
        v.write(0, &data).unwrap();
        // Tamper with a parity (HV spreads them — look one up), then batch
        // re-encode across threads.
        let parity = (0..v.disks())
            .flat_map(|col| v.code().layout().parities_in_col(col))
            .next()
            .unwrap();
        v.inject_corruption(2, parity, 1);
        let receipt = v.encode_all(4).unwrap();
        assert!(v.verify_all());
        assert!(receipt.total_reads() > 0);
        assert_eq!(receipt.data_writes(), 0, "encode writes parities only");
        assert!(receipt.parity_writes() > 0);
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data);
    }

    #[test]
    fn rebuild_all_matches_serial_rebuild() {
        for rotate in [false, true] {
            let mut v = RaidVolume::with_rotation(
                Arc::new(HvCode::new(7).unwrap()),
                6,
                16,
                rotate,
            );
            let data = pattern(v.data_elements() * 16, 55);
            v.write(0, &data).unwrap();
            v.fail_disk(1).unwrap();
            v.fail_disk(5).unwrap();
            let receipt = v.rebuild_all(4).unwrap();
            assert!(receipt.total_writes() > 0);
            assert!(v.verify_all(), "rotate={rotate}");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "rotate={rotate}");
        }
    }

    #[test]
    fn flush_partition_drains_only_owned_range_while_rebuild_parked() {
        let mut v = RaidVolume::with_rotation(Arc::new(HvCode::new(7).unwrap()), 8, 16, false);
        v.set_partitions(Some(2));
        v.enable_cache(CacheConfig { max_stripes: 16, dirty_high_water: 16 });
        let per = v.addressing.data_per_stripe();
        let seed = pattern(v.data_elements() * 16, 41);
        v.write(0, &seed).unwrap();
        v.flush().unwrap();

        // Park a background rebuild with its frontier inside partition 0
        // (stripes 0..4 of the 2-partition map over 8 stripes).
        v.set_spares(1);
        v.fail_disk(3).unwrap();
        v.maintain(1).unwrap();
        let parked = v.rebuild_progress().expect("rebuild task active");
        assert_eq!(parked.next_stripe, 1);
        assert_eq!(v.partition_map().owner_of(parked.next_stripe), 0);

        // Dirty one stripe in each partition, then drain only partition 1.
        v.write(per, &pattern(16, 50)).unwrap();
        v.write(6 * per, &pattern(16, 51)).unwrap();
        assert_eq!(v.cache_dirty_stripes(), 2);
        let receipt = v.flush_partition(1).unwrap();
        assert!(receipt.total_writes() > 0, "partition 1's stripe must flush");
        assert_eq!(v.cache_dirty_stripes(), 1, "partition 0's stripe stays dirty");
        assert_eq!(
            v.rebuild_progress().expect("task still active").next_stripe,
            parked.next_stripe,
            "flushing range B must not advance the rebuild frontier in range A"
        );

        // The parked rebuild still completes, and nothing was lost.
        v.maintain(v.stripes).unwrap();
        assert!(v.rebuild_progress().is_none());
        v.flush().unwrap();
        assert!(v.verify_all());
    }

    #[test]
    fn partitioned_flush_accounts_like_single_partition() {
        let run = |partitions: Option<usize>| {
            let mut v =
                RaidVolume::with_rotation(Arc::new(HvCode::new(7).unwrap()), 6, 16, false);
            v.set_partitions(partitions);
            v.enable_cache(CacheConfig { max_stripes: 16, dirty_high_water: 16 });
            let per = v.addressing.data_per_stripe();
            for s in 0..6 {
                v.write(s * per, &pattern(32, s as u8)).unwrap();
            }
            let receipt = v.flush().unwrap();
            assert!(v.verify_all());
            let mut image = Vec::new();
            for d in 0..v.disks() {
                for i in 0..v.pipeline.backend().elements_per_disk() {
                    let mut buf = vec![0u8; 16];
                    v.pipeline.backend_mut().read(d, i, &mut buf).unwrap();
                    image.push(buf);
                }
            }
            (receipt, image)
        };
        let (serial, serial_img) = run(Some(1));
        let (parted, parted_img) = run(Some(3));
        assert_eq!(serial.per_disk_totals(), parted.per_disk_totals());
        assert_eq!(serial.total(), parted.total());
        assert_eq!(serial_img, parted_img, "flush order must not change bytes");
    }

    #[test]
    fn transient_errors_retry_without_degrading() {
        use crate::backend::{Fault, FaultyBackend, MemBackend};
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(7).unwrap());
        let inner = MemBackend::new(code.layout().cols(), 4 * code.layout().rows(), 16);
        let faulty = FaultyBackend::new(Box::new(inner), Vec::new());
        let mut v = RaidVolume::new(code, 4, 16, Box::new(faulty)).unwrap();
        let data = pattern(5 * 16, 23);
        v.write(0, &data).unwrap();
        v.backend_faulty_mut()
            .unwrap()
            .inject(Fault::Transient { disk: 1, ops: 2 });
        let (bytes, _) = v.read(0, 5).unwrap();
        assert_eq!(bytes, data, "retries must serve the read");
        assert!(v.failed_disks().is_empty(), "transients must not degrade");
        assert_eq!(v.ledger().retries(), 2);
        assert_eq!(v.health().retries_total(), 2);
        assert_eq!(v.health_state(), crate::health::HealthState::Healthy);
    }

    #[test]
    fn latent_sector_reconstructed_and_rewritten_in_place() {
        use crate::backend::{Fault, FaultyBackend, MemBackend};
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(7).unwrap());
        let inner = MemBackend::new(code.layout().cols(), 4 * code.layout().rows(), 16);
        let faulty = FaultyBackend::new(Box::new(inner), Vec::new());
        let mut v = RaidVolume::new(code, 4, 16, Box::new(faulty)).unwrap();
        let data = pattern(v.data_elements() * 16, 29);
        v.write(0, &data).unwrap();
        let (disk, index) = v.locate_data_element(3).unwrap();
        v.backend_faulty_mut()
            .unwrap()
            .inject(Fault::LatentSector { disk, index });
        // The read hits the bad sector; the policy reconstructs the
        // element from its chains and rewrites it, healing the sector.
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data);
        assert!(v.failed_disks().is_empty());
        assert_eq!(v.ledger().latent_repairs(), 1);
        assert_eq!(v.health().latent_repairs_total(), 1);
        // The rewrite remapped the sector: reading again is clean.
        v.reset_ledger();
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data);
        assert_eq!(v.ledger().latent_repairs(), 0);
        assert!(v.verify_all());
    }

    #[test]
    fn too_many_latent_repairs_fail_the_disk() {
        use crate::backend::{Fault, FaultyBackend, MemBackend};
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(7).unwrap());
        let inner = MemBackend::new(code.layout().cols(), 4 * code.layout().rows(), 16);
        let faulty = FaultyBackend::new(Box::new(inner), Vec::new());
        let mut v = RaidVolume::new(code, 4, 16, Box::new(faulty)).unwrap();
        let data = pattern(v.data_elements() * 16, 31);
        v.write(0, &data).unwrap();
        let budget = v.health().policy().max_latent_repairs;
        let (disk, _) = v.locate_data_element(0).unwrap();
        // Keep growing defects on one disk: each full read heals them,
        // until the policy declares the disk dying and fails it.
        for round in 0..=budget {
            for index in 0..v.code().layout().rows() {
                v.backend_faulty_mut()
                    .unwrap()
                    .inject(Fault::LatentSector { disk, index });
            }
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "round {round}");
            if !v.failed_disks().is_empty() {
                break;
            }
        }
        assert_eq!(v.failed_disks(), vec![disk], "escalation must fail the disk");
        assert_eq!(v.health_state(), crate::health::HealthState::Degraded);
        v.rebuild().unwrap();
        assert!(v.verify_all());
    }

    #[test]
    fn hot_spare_auto_rebuild_in_background_steps() {
        use crate::backend::{Fault, FaultyBackend, MemBackend};
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(7).unwrap());
        let inner = MemBackend::new(code.layout().cols(), 4 * code.layout().rows(), 16);
        let faulty = FaultyBackend::new(Box::new(inner), Vec::new());
        let mut v = RaidVolume::new(code, 4, 16, Box::new(faulty)).unwrap();
        v.set_spares(1);
        let data = pattern(v.data_elements() * 16, 37);
        v.write(0, &data).unwrap();
        // The disk dies silently; the next op discovers it and — with a
        // spare stocked — kicks off the background rebuild.
        v.backend_faulty_mut().unwrap().inject(Fault::Dead { disk: 2 });
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data);
        assert_eq!(v.failed_disks(), vec![2]);
        assert_eq!(v.spares(), 0, "auto-heal consumed the spare");
        let task = v.rebuild_progress().expect("background task started");
        assert_eq!(task.disks, vec![2]);
        // Pump one stripe at a time; progress must advance monotonically.
        let mut last = task.next_stripe;
        while let Some(cp) = v.rebuild_progress() {
            assert!(cp.next_stripe >= last);
            last = cp.next_stripe;
            v.maintain(1).unwrap();
        }
        assert!(v.failed_disks().is_empty(), "rebuild completed");
        assert_eq!(v.health_state(), crate::health::HealthState::Healthy);
        assert!(v.verify_all());
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data);
        // The healing story is on the record.
        assert!(!v.ledger().transitions().is_empty());
    }

    #[test]
    fn spare_exhaustion_is_typed_and_fences_critical_writes() {
        let mut v = volume(false);
        v.set_write_fence(true);
        let data = pattern(v.data_elements() * 16, 53);
        v.write(0, &data).unwrap();

        // One spare, three failures over time: the pool runs dry.
        v.set_spares(1);
        v.fail_disk(0).unwrap();
        // Auto-heal consumed the spare for disk 0's rebuild.
        assert_eq!(v.spares(), 0);
        assert!(v.rebuild_progress().is_some());
        v.fail_disk(1).unwrap();
        assert_eq!(v.health_state(), HealthState::Critical);

        // Disk 1 is uncovered and the pool is empty: typed error, not an
        // implicit no-op.
        assert_eq!(v.request_heal(), Err(VolumeError::SpareExhausted { failed: 1, spares: 0 }));
        // But the fence stays open while disk 0's rebuild is in flight.
        assert!(!v.write_fenced());
        v.write(0, &data[..16]).unwrap();

        // Finish disk 0's rebuild; disk 2 then dies with nothing left in
        // the pool: the volume parks Critical with writes fenced.
        while v.rebuild_progress().is_some() {
            v.maintain(2).unwrap();
        }
        v.fail_disk(2).unwrap();
        assert_eq!(v.health_state(), HealthState::Critical);
        assert_eq!(v.request_heal(), Err(VolumeError::SpareExhausted { failed: 2, spares: 0 }));
        assert!(v.write_fenced());
        assert_eq!(
            v.write(0, &data[..16]),
            Err(VolumeError::SpareExhausted { failed: 2, spares: 0 })
        );
        // maintain() stays a quiet no-op (chaos campaigns rely on it) and
        // degraded reads still serve.
        assert!(v.maintain(4).unwrap().total_reads() == 0);
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data);

        // A spare arrives: heal starts, the fence lifts, writes flow.
        v.set_spares(2);
        v.request_heal().unwrap();
        assert!(!v.write_fenced());
        v.write(0, &data[..16]).unwrap();
        while v.rebuild_progress().is_some() {
            v.maintain(2).unwrap();
        }
        assert!(v.failed_disks().is_empty());
        assert!(v.verify_all());
    }

    #[test]
    fn crash_interrupted_rebuild_resumes_from_checkpoint() {
        use crate::backend::{Fault, FaultyBackend, FileBackend};
        let dir = std::env::temp_dir().join(format!("hvraid-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(7).unwrap());
        let rows = code.layout().rows();
        let data;
        {
            let be = FileBackend::create(&dir, code.layout().cols(), 4 * rows, 16).unwrap();
            let mut v = RaidVolume::new(Arc::clone(&code), 4, 16, Box::new(be)).unwrap();
            data = pattern(v.data_elements() * 16, 41);
            v.write(0, &data).unwrap();
            v.fail_disk(3).unwrap();
        }
        // Rebuild under a crash that fires deep enough for at least one
        // stripe's checkpoint to have landed.
        {
            let be = FileBackend::open(&dir).unwrap();
            let faulty = FaultyBackend::new(Box::new(be), Vec::new())
                .with_faults([Fault::CrashAtOp { at_op: 120 }]);
            let mut v = RaidVolume::open(Arc::clone(&code), Box::new(faulty), false).unwrap();
            assert!(matches!(
                v.rebuild(),
                Err(VolumeError::Backend(DiskError::Crashed))
            ));
        }
        // Reopen: the checkpoint resumes the task past stripe 0 — not
        // from scratch — and the rebuild completes.
        let be = FileBackend::open(&dir).unwrap();
        let mut v = RaidVolume::open(Arc::clone(&code), Box::new(be), false).unwrap();
        let cp = v.rebuild_progress().expect("checkpoint resumed a task");
        assert_eq!(cp.disks, vec![3]);
        assert!(cp.next_stripe > 0, "must resume mid-volume, not at stripe 0");
        v.rebuild().unwrap();
        assert!(v.failed_disks().is_empty());
        assert!(v.verify_all());
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data);
        assert!(v.rebuild_progress().is_none(), "checkpoint cleared on completion");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_writes_coalesce_parity_io() {
        // N separate writes into one stripe: uncached pays N parity
        // updates, the cache pays one coalesced flush.
        let mut plain = volume(false);
        let mut cached = volume(false);
        cached.enable_cache(CacheConfig::default());
        let per = plain.addressing.data_per_stripe();
        let n = per.min(6);
        for k in 0..n {
            let buf = pattern(16, k as u8);
            plain.write(k, &buf).unwrap();
            cached.write(k, &buf).unwrap();
        }
        assert_eq!(cached.ledger().total(), 0, "writes absorbed, no I/O yet");
        assert_eq!(cached.cache_dirty_stripes(), 1);
        cached.flush().unwrap();
        assert_eq!(cached.cache_dirty_stripes(), 0);
        assert_eq!(cached.ledger().cache_flushes(), 1);
        assert!(
            cached.ledger().total() < plain.ledger().total(),
            "coalesced flush ({}) must beat {} per-element RMWs ({})",
            cached.ledger().total(),
            n,
            plain.ledger().total()
        );
        assert!(cached.verify_all(), "flush must leave parity consistent");
        let (a, _) = plain.read(0, n).unwrap();
        let (b, _) = cached.read(0, n).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cached_reads_hit_after_population() {
        let mut v = volume(false);
        let data = pattern(8 * 16, 3);
        v.write(0, &data).unwrap();
        v.enable_cache(CacheConfig::default());
        let (bytes, r1) = v.read(0, 8).unwrap();
        assert_eq!(bytes, data);
        assert_eq!(r1.cache_misses(), 8);
        let before = v.ledger().total_reads();
        let (bytes, r2) = v.read(0, 8).unwrap();
        assert_eq!(bytes, data);
        assert_eq!(r2.cache_hits(), 8);
        assert_eq!(r2.cache_misses(), 0);
        assert_eq!(v.ledger().total_reads(), before, "hits issue no disk reads");
        // Dirty data is served from the cache before any flush.
        let patch = pattern(16, 77);
        v.write(2, &patch).unwrap();
        let (bytes, _) = v.read(2, 1).unwrap();
        assert_eq!(bytes, patch);
    }

    #[test]
    fn high_water_and_budget_policies_flush_and_evict() {
        let mut v = volume(false);
        v.enable_cache(CacheConfig { max_stripes: 2, dirty_high_water: 1 });
        let per = v.addressing.data_per_stripe();
        let mut expect = vec![0u8; v.data_elements() * 16];
        for s in 0..4 {
            let buf = pattern(16, 100 + s as u8);
            v.write(s * per, &buf).unwrap();
            expect[s * per * 16..s * per * 16 + 16].copy_from_slice(&buf);
            assert!(v.cache_dirty_stripes() <= 1, "high-water mark enforced");
            assert!(v.cache_resident_stripes() <= 2, "memory budget enforced");
        }
        v.flush().unwrap();
        assert!(v.ledger().cache_flushes() >= 3);
        assert!(v.ledger().cache_evictions() >= 2);
        assert!(v.verify_all());
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, expect);
    }

    #[test]
    fn degraded_cached_flush_and_read_serve_true_bytes() {
        for failures in [vec![3usize], vec![0, 4]] {
            let mut v = volume(false);
            let initial = pattern(v.data_elements() * 16, 51);
            v.write(0, &initial).unwrap();
            for &d in &failures {
                v.fail_disk(d).unwrap();
            }
            v.enable_cache(CacheConfig::default());
            let patch = pattern(9 * 16, 201);
            v.write(5, &patch).unwrap();
            // Unflushed dirty data is already visible through the cache.
            let (now, _) = v.read(5, 9).unwrap();
            assert_eq!(now, patch, "failures {failures:?}");
            v.flush().unwrap();
            v.rebuild().unwrap();
            assert!(v.verify_all(), "failures {failures:?}");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            let mut expect = initial.clone();
            expect[5 * 16..14 * 16].copy_from_slice(&patch);
            assert_eq!(bytes, expect, "failures {failures:?}");
        }
    }

    #[test]
    fn drop_flushes_dirty_cache_to_file_backend() {
        use crate::backend::FileBackend;
        let dir = std::env::temp_dir().join(format!("hvraid-cachedrop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(7).unwrap());
        let rows = code.layout().rows();
        let data = pattern(10 * 16, 91);
        {
            let be = FileBackend::create(&dir, code.layout().cols(), 4 * rows, 16).unwrap();
            let mut v = RaidVolume::new(Arc::clone(&code), 4, 16, Box::new(be)).unwrap();
            v.enable_cache(CacheConfig::default());
            v.write(3, &data).unwrap();
            assert!(v.cache_dirty_stripes() > 0, "write-back defers the flush");
            // No explicit flush: the drop barrier must write it out.
        }
        let be = FileBackend::open(&dir).unwrap();
        let mut v = RaidVolume::open(code, Box::new(be), false).unwrap();
        assert!(v.verify_all());
        let (bytes, _) = v.read(3, 10).unwrap();
        assert_eq!(bytes, data, "dropped volume must have flushed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_invalidates_clean_cached_copies() {
        let mut v = volume(false);
        let data = pattern(v.data_elements() * 16, 63);
        v.write(0, &data).unwrap();
        v.enable_cache(CacheConfig::default());
        let (_, _) = v.read(0, v.data_elements()).unwrap(); // populate
        let cell = v.code().layout().data_cells()[0];
        v.inject_corruption(0, cell, 5);
        // Scrub heals the disks; the invalidated cache entry must re-read
        // the healed value instead of serving a stale clean copy.
        let findings = v.scrub().unwrap();
        assert_eq!(findings.len(), 1);
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data);
        assert!(v.verify_all());
    }

    #[test]
    fn faulty_backend_mid_write_failure_replans_degraded() {
        use crate::backend::{FaultPoint, FaultyBackend, MemBackend};
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(7).unwrap());
        let layout_rows = code.layout().rows();
        let inner = MemBackend::new(code.layout().cols(), 4 * layout_rows, 16);
        // Fail disk 2 deep into the first write's request stream.
        let faulty = FaultyBackend::new(
            Box::new(inner),
            vec![FaultPoint { at_op: 9, disk: 2 }],
        );
        let mut v = RaidVolume::new(code, 4, 16, Box::new(faulty)).unwrap();
        let data = pattern(6 * 16, 19);
        let receipt = v.write(0, &data).unwrap();
        assert!(receipt.total_writes() > 0);
        assert_eq!(v.failed_disks(), vec![2], "fault must be adopted");
        let (bytes, _) = v.read(0, 6).unwrap();
        assert_eq!(bytes, data, "degraded replan must serve the write");
        v.rebuild().unwrap();
        assert!(v.verify_all());
    }
}
