//! The RAID-6 volume: striped storage with partial writes, degraded reads
//! and reconstruction over any array code.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use raid_core::decoder;
use raid_core::io::IoTally;
use raid_core::plan::degraded::{plan_degraded_read, plan_degraded_read_multi};
use raid_core::plan::single::{plan_single_disk_recovery, SearchStrategy};
use raid_core::plan::write::{plan_partial_write, write_cost, WriteMode};
use raid_core::layout::Layout;
use raid_core::{ArrayCode, Cell, ChainId, Stripe, XorPlan};
use raid_math::xor::xor_into;

use crate::addr::Addressing;

/// Lowers `(lost cell, repair chain)` choices — the shape shared by the
/// degraded-read and single-disk recovery planners — into a compiled
/// [`XorPlan`]: each cell is rebuilt as the XOR of the other cells of its
/// chosen chain.
fn compile_chain_repairs(layout: &Layout, repairs: &[(Cell, ChainId)]) -> XorPlan {
    let sources: Vec<Vec<Cell>> = repairs
        .iter()
        .map(|(cell, chain)| {
            layout.chain(*chain).cells().filter(|c| c != cell).collect()
        })
        .collect();
    XorPlan::from_steps(
        layout.rows(),
        layout.cols(),
        repairs.iter().zip(&sources).map(|((cell, _), src)| (*cell, src.as_slice())),
    )
}

/// Errors from volume operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VolumeError {
    /// Request exceeds the volume's data-element space.
    OutOfRange {
        /// First element requested.
        start: usize,
        /// Elements requested.
        len: usize,
        /// Volume capacity in data elements.
        capacity: usize,
    },
    /// Buffer length does not match `len × element_size`.
    BadBufferLength {
        /// Expected byte count.
        expected: usize,
        /// Provided byte count.
        got: usize,
    },
    /// A disk index was out of range.
    NoSuchDisk {
        /// The offending index.
        disk: usize,
    },
    /// More disks failed than the code tolerates.
    TooManyFailures {
        /// Currently failed disk count.
        failed: usize,
    },
}

impl fmt::Display for VolumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VolumeError::OutOfRange { start, len, capacity } => {
                write!(f, "request [{start}, {}) exceeds capacity {capacity}", start + len)
            }
            VolumeError::BadBufferLength { expected, got } => {
                write!(f, "buffer holds {got} bytes, expected {expected}")
            }
            VolumeError::NoSuchDisk { disk } => write!(f, "no disk #{disk}"),
            VolumeError::TooManyFailures { failed } => {
                write!(f, "{failed} failed disks exceed RAID-6 tolerance")
            }
        }
    }
}

impl std::error::Error for VolumeError {}

/// Per-operation I/O receipt (element requests, the paper's unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoReceipt {
    /// Data-element writes issued.
    pub data_writes: u64,
    /// Parity-element writes issued.
    pub parity_writes: u64,
    /// Element reads issued.
    pub reads: u64,
}

impl IoReceipt {
    /// Total write requests.
    pub fn total_writes(&self) -> u64 {
        self.data_writes + self.parity_writes
    }
}

/// A RAID-6 volume striping data elements over a simulated disk array.
///
/// ```
/// use std::sync::Arc;
/// use hv_code::HvCode;
/// use raid_array::RaidVolume;
///
/// let mut v = RaidVolume::new(Arc::new(HvCode::new(7)?), 4, 16);
/// v.write(3, &[0xAB; 2 * 16])?;          // two elements at address 3
/// v.fail_disk(1)?;                        // disk dies
/// let (bytes, io) = v.read(3, 2)?;        // degraded read still serves
/// assert_eq!(bytes, vec![0xAB; 32]);
/// v.rebuild()?;                           // minimum-I/O reconstruction
/// assert!(v.verify_all());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct RaidVolume {
    code: Arc<dyn ArrayCode>,
    addressing: Addressing,
    element_size: usize,
    stripes: Vec<Stripe>,
    failed: BTreeSet<usize>,
    tally: IoTally,
}

impl fmt::Debug for RaidVolume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RaidVolume")
            .field("code", &self.code.name())
            .field("stripes", &self.stripes.len())
            .field("element_size", &self.element_size)
            .field("failed", &self.failed)
            .finish()
    }
}

impl RaidVolume {
    /// Creates a zero-filled volume of `stripes` stripes.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` or `element_size` is zero.
    pub fn new(code: Arc<dyn ArrayCode>, stripes: usize, element_size: usize) -> Self {
        Self::with_rotation(code, stripes, element_size, false)
    }

    /// Like [`RaidVolume::new`] with stripe rotation enabled or disabled.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` or `element_size` is zero.
    pub fn with_rotation(
        code: Arc<dyn ArrayCode>,
        stripes: usize,
        element_size: usize,
        rotate: bool,
    ) -> Self {
        assert!(stripes > 0, "volume needs at least one stripe");
        assert!(element_size > 0, "element size must be positive");
        let layout = code.layout();
        let mut ss: Vec<Stripe> = (0..stripes)
            .map(|_| Stripe::for_layout(layout, element_size))
            .collect();
        for s in &mut ss {
            s.encode(layout);
        }
        let addressing = Addressing::new(layout.num_data_cells(), layout.cols(), rotate);
        let disks = layout.cols();
        RaidVolume { code, addressing, element_size, stripes: ss, failed: BTreeSet::new(), tally: IoTally::new(disks) }
    }

    /// The array code in use.
    pub fn code(&self) -> &dyn ArrayCode {
        self.code.as_ref()
    }

    /// Volume capacity in data elements.
    pub fn data_elements(&self) -> usize {
        self.addressing.data_per_stripe() * self.stripes.len()
    }

    /// Element size in bytes.
    pub fn element_size(&self) -> usize {
        self.element_size
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.code.layout().cols()
    }

    /// Currently failed disks.
    pub fn failed_disks(&self) -> Vec<usize> {
        self.failed.iter().copied().collect()
    }

    /// Cumulative per-disk I/O tally.
    pub fn tally(&self) -> &IoTally {
        &self.tally
    }

    /// Resets the I/O tally (between experiments).
    pub fn reset_tally(&mut self) {
        self.tally = IoTally::new(self.disks());
    }

    /// Marks a disk failed (its contents become unreadable).
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] if the disk does not exist or a third disk
    /// would be failed.
    pub fn fail_disk(&mut self, disk: usize) -> Result<(), VolumeError> {
        if disk >= self.disks() {
            return Err(VolumeError::NoSuchDisk { disk });
        }
        self.failed.insert(disk);
        if self.failed.len() > 2 {
            self.failed.remove(&disk);
            return Err(VolumeError::TooManyFailures { failed: 3 });
        }
        // Model the loss: zero the column in every stripe.
        for (idx, stripe) in self.stripes.iter_mut().enumerate() {
            let col = self.addressing.logical_col(idx, disk);
            stripe.erase_col(col);
        }
        Ok(())
    }

    /// Writes `len` data elements starting at linear element `start`.
    ///
    /// On a healthy array this performs the RAID-6 read-modify-write: reads
    /// old data and parities, writes new data and incrementally updated
    /// parities. While one or two disks are failed the write is served in
    /// **degraded mode** (reconstruct-write): each touched stripe is
    /// decoded in memory, patched, re-encoded, and its surviving columns
    /// rewritten — the lost columns' logical contents advance too, and the
    /// next [`RaidVolume::rebuild`] materializes them.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] on range/length mismatches.
    pub fn write(&mut self, start: usize, data: &[u8]) -> Result<IoReceipt, VolumeError> {
        let len = data.len() / self.element_size.max(1);
        if data.len() != len * self.element_size || data.is_empty() {
            return Err(VolumeError::BadBufferLength {
                expected: len.max(1) * self.element_size,
                got: data.len(),
            });
        }
        self.check_range(start, len)?;
        if !self.failed.is_empty() {
            return self.write_degraded(start, len, data);
        }

        let mut receipt = IoReceipt::default();
        let mut offset = 0usize;
        for seg in self.addressing.split(start, len) {
            let layout = self.code.layout();
            let plan = plan_partial_write(layout, seg.start, seg.len);

            // Pick the cheaper parity-sourcing strategy: read-modify-write,
            // reconstruct-write, or (for a covering write) no reads at all.
            let cost = write_cost(layout, &plan);
            let reads = match cost.cheaper {
                WriteMode::Rmw => &cost.rmw_reads,
                WriteMode::Reconstruct => &cost.reconstruct_reads,
                WriteMode::FullStripe => &cost.reconstruct_reads, // empty
            };
            for c in reads {
                let disk = self.addressing.physical_disk(seg.stripe, c.col);
                self.tally.add_reads(disk, 1);
                receipt.reads += 1;
            }

            // Apply new data, tracking deltas.
            let stripe = &mut self.stripes[seg.stripe];
            let mut deltas: Vec<(Cell, Vec<u8>)> = Vec::with_capacity(seg.len);
            for (k, &cell) in plan.data_writes.iter().enumerate() {
                let new = &data[(offset + k) * self.element_size..(offset + k + 1) * self.element_size];
                let mut delta = stripe.element(cell).to_vec();
                xor_into(&mut delta, new);
                stripe.set_element(cell, new);
                deltas.push((cell, delta));
            }

            // Incrementally update affected parities in dependency order:
            // a parity is ready once no still-pending parity is a member of
            // its chain (parity-into-parity cascades, e.g. RDP).
            let mut pending: Vec<Cell> = plan.parity_writes.clone();
            let delta_of = |cell: Cell, deltas: &[(Cell, Vec<u8>)]| {
                deltas.iter().find(|(c, _)| *c == cell).map(|(_, d)| d.clone())
            };
            while !pending.is_empty() {
                let mut progressed = false;
                let mut next_pending = Vec::new();
                for &parity in &pending {
                    let chain_id = layout.chain_of_parity(parity).expect("parity owns chain");
                    let chain = layout.chain(chain_id);
                    if chain.members.iter().any(|m| pending.contains(m) && *m != parity) {
                        next_pending.push(parity);
                        continue;
                    }
                    // Parity delta = XOR of member deltas.
                    let mut pdelta = vec![0u8; self.element_size];
                    let mut touched = false;
                    for m in &chain.members {
                        if let Some(d) = delta_of(*m, &deltas) {
                            xor_into(&mut pdelta, &d);
                            touched = true;
                        }
                    }
                    debug_assert!(touched, "parity {parity} scheduled without member change");
                    let mut newv = stripe.element(parity).to_vec();
                    xor_into(&mut newv, &pdelta);
                    stripe.set_element(parity, &newv);
                    deltas.push((parity, pdelta));
                    progressed = true;
                }
                assert!(progressed, "cyclic parity dependency during write");
                pending = next_pending;
            }

            // Write I/O.
            for c in &plan.data_writes {
                let disk = self.addressing.physical_disk(seg.stripe, c.col);
                self.tally.add_writes(disk, 1);
                receipt.data_writes += 1;
            }
            for c in &plan.parity_writes {
                let disk = self.addressing.physical_disk(seg.stripe, c.col);
                self.tally.add_writes(disk, 1);
                receipt.parity_writes += 1;
            }
            offset += seg.len;
        }
        Ok(receipt)
    }

    /// Degraded-mode write: reconstruct-patch-reencode each touched stripe
    /// and rewrite its surviving columns.
    fn write_degraded(
        &mut self,
        start: usize,
        len: usize,
        data: &[u8],
    ) -> Result<IoReceipt, VolumeError> {
        if self.failed.len() > 2 {
            return Err(VolumeError::TooManyFailures { failed: self.failed.len() });
        }
        let mut receipt = IoReceipt::default();
        let mut offset = 0usize;
        for seg in self.addressing.split(start, len) {
            let layout = self.code.layout();
            let failed_cols: Vec<usize> = self
                .failed
                .iter()
                .map(|&d| self.addressing.logical_col(seg.stripe, d))
                .collect();

            // Reconstruct the stripe in memory (reads every surviving
            // element once).
            let mut lost: Vec<Cell> = Vec::new();
            for &col in &failed_cols {
                lost.extend(layout.cells_in_col(col));
            }
            let mut scratch = self.stripes[seg.stripe].clone();
            decoder::decode(&mut scratch, layout, &lost)
                .expect("RAID-6 code repairs up to two columns");
            for col in 0..layout.cols() {
                if failed_cols.contains(&col) {
                    continue;
                }
                let disk = self.addressing.physical_disk(seg.stripe, col);
                self.tally.add_reads(disk, layout.rows() as u64);
                receipt.reads += layout.rows() as u64;
            }

            // Patch the data elements and re-encode.
            let cells = &layout.data_cells()[seg.start..seg.start + seg.len];
            for (k, &cell) in cells.iter().enumerate() {
                let bytes =
                    &data[(offset + k) * self.element_size..(offset + k + 1) * self.element_size];
                scratch.set_element(cell, bytes);
            }
            scratch.encode(layout);

            // Store surviving columns; keep failed columns erased on disk.
            for col in 0..layout.cols() {
                if failed_cols.contains(&col) {
                    continue;
                }
                for row in 0..layout.rows() {
                    let cell = Cell::new(row, col);
                    let value = scratch.element(cell).to_vec();
                    self.stripes[seg.stripe].set_element(cell, &value);
                }
            }

            // Write accounting: patched data cells + every surviving parity
            // (reconstruct-write renews them all).
            for &cell in cells {
                if !failed_cols.contains(&cell.col) {
                    let disk = self.addressing.physical_disk(seg.stripe, cell.col);
                    self.tally.add_writes(disk, 1);
                    receipt.data_writes += 1;
                }
            }
            for col in 0..layout.cols() {
                if failed_cols.contains(&col) {
                    continue;
                }
                for parity in layout.parities_in_col(col) {
                    let disk = self.addressing.physical_disk(seg.stripe, parity.col);
                    self.tally.add_writes(disk, 1);
                    receipt.parity_writes += 1;
                }
            }
            offset += seg.len;
        }
        Ok(receipt)
    }

    /// Reads `len` data elements starting at `start`, serving through
    /// reconstruction when requested elements live on failed disks (the
    /// degraded read of the paper's Section V-B).
    ///
    /// Returns the bytes and the I/O receipt; `receipt.reads` is the
    /// paper's `L'`.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] on bad ranges.
    pub fn read(&mut self, start: usize, len: usize) -> Result<(Vec<u8>, IoReceipt), VolumeError> {
        self.check_range(start, len)?;
        let mut receipt = IoReceipt::default();
        let mut out = Vec::with_capacity(len * self.element_size);

        for seg in self.addressing.split(start, len) {
            let layout = self.code.layout();
            let requested: Vec<Cell> =
                layout.data_cells()[seg.start..seg.start + seg.len].to_vec();
            let failed_cols: Vec<usize> = self
                .failed
                .iter()
                .map(|&d| self.addressing.logical_col(seg.stripe, d))
                .collect();

            let any_lost = requested.iter().any(|c| failed_cols.contains(&c.col));
            if !any_lost {
                for &cell in &requested {
                    let disk = self.addressing.physical_disk(seg.stripe, cell.col);
                    self.tally.add_reads(disk, 1);
                    receipt.reads += 1;
                    out.extend_from_slice(self.stripes[seg.stripe].element(cell));
                }
                continue;
            }

            match failed_cols.len() {
                1 => {
                    let plan = plan_degraded_read(layout, failed_cols[0], &requested);
                    for &cell in &plan.fetched {
                        let disk = self.addressing.physical_disk(seg.stripe, cell.col);
                        self.tally.add_reads(disk, 1);
                        receipt.reads += 1;
                    }
                    // Reconstruct lost elements in a scratch copy and serve.
                    let mut scratch = self.stripes[seg.stripe].clone();
                    compile_chain_repairs(layout, &plan.repairs).execute(&mut scratch);
                    for &cell in &requested {
                        out.extend_from_slice(scratch.element(cell));
                    }
                }
                2 => {
                    // Double-degraded read: reconstruct only the requested
                    // cells' dependency slice instead of both columns.
                    let plan = plan_degraded_read_multi(layout, &failed_cols, &requested)
                        .expect("RAID-6 code repairs any two columns");
                    for cell in &plan.fetched {
                        let disk = self.addressing.physical_disk(seg.stripe, cell.col);
                        self.tally.add_reads(disk, 1);
                        receipt.reads += 1;
                    }
                    let mut scratch = self.stripes[seg.stripe].clone();
                    raid_core::XorPlan::from_steps(
                        layout.rows(),
                        layout.cols(),
                        plan.steps.iter().map(|s| (s.target, s.sources.as_slice())),
                    )
                    .execute(&mut scratch);
                    for &cell in &requested {
                        out.extend_from_slice(scratch.element(cell));
                    }
                }
                n => return Err(VolumeError::TooManyFailures { failed: n }),
            }
        }
        Ok((out, receipt))
    }

    /// Rebuilds every failed disk in place (single-disk hybrid recovery or
    /// generic double-disk decode) and marks them healthy again.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::TooManyFailures`] if more than two disks are
    /// failed (cannot happen through this API).
    pub fn rebuild(&mut self) -> Result<IoReceipt, VolumeError> {
        let mut receipt = IoReceipt::default();
        let failed: Vec<usize> = self.failed.iter().copied().collect();
        match failed.len() {
            0 => {}
            1 => {
                for idx in 0..self.stripes.len() {
                    let col = self.addressing.logical_col(idx, failed[0]);
                    let layout = self.code.layout();
                    let plan =
                        plan_single_disk_recovery(layout, col, SearchStrategy::Auto);
                    for &cell in &plan.reads {
                        let disk = self.addressing.physical_disk(idx, cell.col);
                        self.tally.add_reads(disk, 1);
                        receipt.reads += 1;
                    }
                    let stripe = &mut self.stripes[idx];
                    compile_chain_repairs(layout, &plan.choices).execute(stripe);
                    for (cell, _) in &plan.choices {
                        self.tally.add_writes(failed[0], 1);
                        if layout.is_data(*cell) {
                            receipt.data_writes += 1;
                        } else {
                            receipt.parity_writes += 1;
                        }
                    }
                }
            }
            2 => {
                for idx in 0..self.stripes.len() {
                    let layout = self.code.layout();
                    let c1 = self.addressing.logical_col(idx, failed[0]);
                    let c2 = self.addressing.logical_col(idx, failed[1]);
                    let mut lost = layout.cells_in_col(c1);
                    lost.extend(layout.cells_in_col(c2));
                    // Double recovery fetches every surviving element.
                    for col in 0..layout.cols() {
                        if col == c1 || col == c2 {
                            continue;
                        }
                        let disk = self.addressing.physical_disk(idx, col);
                        self.tally.add_reads(disk, layout.rows() as u64);
                        receipt.reads += layout.rows() as u64;
                    }
                    let stripe = &mut self.stripes[idx];
                    decoder::decode(stripe, layout, &lost)
                        .expect("RAID-6 code repairs any two columns");
                    for &cell in &lost {
                        let disk = self.addressing.physical_disk(idx, cell.col);
                        self.tally.add_writes(disk, 1);
                        if layout.is_data(cell) {
                            receipt.data_writes += 1;
                        } else {
                            receipt.parity_writes += 1;
                        }
                    }
                }
            }
            n => return Err(VolumeError::TooManyFailures { failed: n }),
        }
        self.failed.clear();
        Ok(receipt)
    }

    /// Verifies every stripe's parity consistency.
    pub fn verify_all(&self) -> bool {
        let layout = self.code.layout();
        self.stripes.iter().all(|s| s.verify(layout).is_none())
    }

    /// Scrubs every stripe: detects silently corrupted elements from the
    /// pattern of violated parity chains and repairs them in place
    /// (see [`raid_core::scrub`]). Requires a healthy array — scrubbing a
    /// degraded volume cannot distinguish corruption from loss.
    ///
    /// Returns one report per stripe that was *not* clean.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError::TooManyFailures`] if any disk is failed.
    pub fn scrub(&mut self) -> Result<Vec<(usize, raid_core::scrub::ScrubReport)>, VolumeError> {
        if !self.failed.is_empty() {
            return Err(VolumeError::TooManyFailures { failed: self.failed.len() });
        }
        let layout = self.code.layout();
        let mut findings = Vec::new();
        for (idx, stripe) in self.stripes.iter_mut().enumerate() {
            let report = raid_core::scrub::scrub(stripe, layout);
            if report != raid_core::scrub::ScrubReport::Clean {
                findings.push((idx, report));
            }
        }
        Ok(findings)
    }

    /// Migrates every data element onto a fresh volume built on a
    /// different (or identical) code — the restriping path used when an
    /// operator changes coding schemes. The source may be degraded (data
    /// is recovered on the fly through degraded reads); the target is
    /// sized with exactly enough stripes.
    ///
    /// # Errors
    ///
    /// Returns [`VolumeError`] if the source is beyond its failure
    /// tolerance.
    pub fn migrate_to(&mut self, code: Arc<dyn ArrayCode>) -> Result<RaidVolume, VolumeError> {
        let elements = self.data_elements();
        let per_stripe = code.layout().num_data_cells();
        let stripes = elements.div_ceil(per_stripe);
        let mut target = RaidVolume::with_rotation(
            code,
            stripes,
            self.element_size,
            self.addressing.rotates(),
        );
        // Stream stripe-sized extents; degraded sources reconstruct as
        // they go.
        let chunk = per_stripe.max(1);
        let mut at = 0usize;
        while at < elements {
            let n = chunk.min(elements - at);
            let (bytes, _) = self.read(at, n)?;
            target.write(at, &bytes)?;
            at += n;
        }
        Ok(target)
    }

    /// Corrupts one byte of an element — test/chaos-engineering hook used
    /// by the scrub example and the failure-injection tests.
    ///
    /// # Panics
    ///
    /// Panics if the stripe index or cell is out of range.
    pub fn inject_corruption(&mut self, stripe: usize, cell: Cell, byte: usize) {
        let buf = self.stripes[stripe].element_mut(cell);
        buf[byte % buf.len()] ^= 0x80;
    }

    fn check_range(&self, start: usize, len: usize) -> Result<(), VolumeError> {
        if start + len > self.data_elements() {
            return Err(VolumeError::OutOfRange { start, len, capacity: self.data_elements() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_code::HvCode;
    use raid_baselines::{HCode, RdpCode, XCode};

    fn volume(rotate: bool) -> RaidVolume {
        RaidVolume::with_rotation(Arc::new(HvCode::new(7).unwrap()), 4, 16, rotate)
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
    }

    #[test]
    fn write_read_round_trip() {
        let mut v = volume(false);
        let buf = pattern(5 * 16, 3);
        let receipt = v.write(7, &buf).unwrap();
        assert_eq!(receipt.data_writes, 5);
        assert!(receipt.parity_writes > 0);
        assert!(v.verify_all(), "incremental parity update must match re-encode");
        let (out, _) = v.read(7, 5).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn writes_crossing_stripes_stay_consistent() {
        let mut v = volume(false);
        let per_stripe = v.addressing.data_per_stripe();
        let buf = pattern(6 * 16, 9);
        v.write(per_stripe - 3, &buf).unwrap();
        assert!(v.verify_all());
        let (out, _) = v.read(per_stripe - 3, 6).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn degraded_read_returns_true_bytes() {
        let mut v = volume(false);
        let buf = pattern(10 * 16, 5);
        v.write(0, &buf).unwrap();
        for disk in 0..v.disks() {
            let mut broken = volume(false);
            broken.write(0, &buf).unwrap();
            broken.fail_disk(disk).unwrap();
            let (out, receipt) = broken.read(0, 10).unwrap();
            assert_eq!(out, buf, "disk {disk}");
            assert!(receipt.reads >= 10, "disk {disk}");
        }
    }

    #[test]
    fn double_failure_rebuild_restores_everything() {
        let mut v = volume(false);
        let buf = pattern(v.data_elements() * 16, 7);
        v.write(0, &buf).unwrap();
        v.fail_disk(1).unwrap();
        v.fail_disk(4).unwrap();
        let receipt = v.rebuild().unwrap();
        assert!(receipt.total_writes() > 0);
        assert!(v.verify_all());
        let (out, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn single_failure_rebuild_uses_hybrid_plan() {
        let mut v = volume(false);
        let buf = pattern(v.data_elements() * 16, 11);
        v.write(0, &buf).unwrap();
        v.fail_disk(3).unwrap();
        let receipt = v.rebuild().unwrap();
        assert!(v.verify_all());
        let (out, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(out, buf);
        // Hybrid recovery reads fewer elements than fetching everything.
        let all = (v.disks() - 1) * v.code.layout().rows() * 4;
        assert!((receipt.reads as usize) < all);
    }

    #[test]
    fn rotation_preserves_correctness() {
        let mut v = volume(true);
        let buf = pattern(v.data_elements() * 16, 13);
        v.write(0, &buf).unwrap();
        v.fail_disk(2).unwrap();
        let (out, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(out, buf);
        v.rebuild().unwrap();
        assert!(v.verify_all());
    }

    #[test]
    fn works_across_codes() {
        let codes: Vec<Arc<dyn ArrayCode>> = vec![
            Arc::new(HvCode::new(7).unwrap()),
            Arc::new(RdpCode::new(7).unwrap()),
            Arc::new(XCode::new(7).unwrap()),
            Arc::new(HCode::new(7).unwrap()),
        ];
        for code in codes {
            let name = code.name().to_string();
            let mut v = RaidVolume::new(code, 3, 8);
            let buf = pattern(v.data_elements() * 8, 17);
            v.write(0, &buf).unwrap();
            assert!(v.verify_all(), "{name}");
            v.fail_disk(0).unwrap();
            v.fail_disk(2).unwrap();
            v.rebuild().unwrap();
            let (out, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(out, buf, "{name}");
        }
    }

    #[test]
    fn error_paths() {
        let mut v = volume(false);
        assert!(matches!(
            v.read(v.data_elements(), 1),
            Err(VolumeError::OutOfRange { .. })
        ));
        assert!(matches!(
            v.write(0, &[1, 2, 3]),
            Err(VolumeError::BadBufferLength { .. })
        ));
        assert!(matches!(v.fail_disk(99), Err(VolumeError::NoSuchDisk { disk: 99 })));
        v.fail_disk(0).unwrap();
        v.fail_disk(1).unwrap();
        assert!(matches!(v.fail_disk(2), Err(VolumeError::TooManyFailures { .. })));
    }

    #[test]
    fn degraded_writes_survive_rebuild() {
        for failures in [vec![3usize], vec![0, 4]] {
            let mut v = volume(false);
            let initial = pattern(v.data_elements() * 16, 21);
            v.write(0, &initial).unwrap();
            for &d in &failures {
                v.fail_disk(d).unwrap();
            }

            // Overwrite a window while degraded.
            let patch = pattern(9 * 16, 99);
            let receipt = v.write(5, &patch).unwrap();
            assert!(receipt.reads > 0 && receipt.total_writes() > 0);

            // Degraded read sees the new bytes immediately.
            let (now, _) = v.read(5, 9).unwrap();
            assert_eq!(now, patch, "degraded read after degraded write");

            // Rebuild materializes the failed disks consistently.
            v.rebuild().unwrap();
            assert!(v.verify_all(), "failures {failures:?}");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            let mut expect = initial.clone();
            expect[5 * 16..14 * 16].copy_from_slice(&patch);
            assert_eq!(bytes, expect, "failures {failures:?}");
        }
    }

    #[test]
    fn double_degraded_small_reads_fetch_a_slice_not_everything() {
        let mut v = volume(false);
        let data = pattern(v.data_elements() * 16, 41);
        v.write(0, &data).unwrap();
        v.fail_disk(0).unwrap();
        v.fail_disk(3).unwrap();
        v.reset_tally();
        // Read one element that lives on a failed disk.
        let lost_ordinal = v
            .code()
            .layout()
            .data_cells()
            .iter()
            .position(|c| c.col == 0)
            .unwrap();
        let (bytes, receipt) = v.read(lost_ordinal, 1).unwrap();
        assert_eq!(bytes, data[lost_ordinal * 16..(lost_ordinal + 1) * 16]);
        // Full scan would read (disks − 2) × rows = 4 × 6 = 24 elements;
        // the targeted slice must be strictly cheaper.
        let full_scan = (v.disks() - 2) * v.code().layout().rows();
        assert!(
            (receipt.reads as usize) < full_scan,
            "targeted read used {} reads, full scan is {full_scan}",
            receipt.reads
        );
    }

    #[test]
    fn scrub_finds_and_fixes_injected_corruption() {
        let mut v = volume(false);
        let data = pattern(v.data_elements() * 16, 31);
        v.write(0, &data).unwrap();
        assert!(v.scrub().unwrap().is_empty(), "clean volume must scrub clean");

        v.inject_corruption(1, Cell::new(2, 3), 7);
        v.inject_corruption(3, Cell::new(0, 0), 0);
        assert!(!v.verify_all());
        let findings = v.scrub().unwrap();
        assert_eq!(findings.len(), 2);
        for (stripe, report) in &findings {
            assert!(
                matches!(report, raid_core::scrub::ScrubReport::Repaired { .. }),
                "stripe {stripe}: {report:?}"
            );
        }
        assert!(v.verify_all());
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data);
    }

    #[test]
    fn scrub_requires_healthy_array() {
        let mut v = volume(false);
        v.fail_disk(0).unwrap();
        assert!(matches!(v.scrub(), Err(VolumeError::TooManyFailures { .. })));
    }

    #[test]
    fn migration_between_codes_preserves_data() {
        let mut src = volume(false); // HV p=7
        let data = pattern(src.data_elements() * 16, 61);
        src.write(0, &data).unwrap();

        // Migrate to RDP — even while the source is degraded.
        src.fail_disk(2).unwrap();
        let mut dst = src
            .migrate_to(Arc::new(RdpCode::new(5).unwrap()))
            .unwrap();
        assert!(dst.verify_all());
        assert!(dst.data_elements() >= src.data_elements());
        let (bytes, _) = dst.read(0, src.data_elements()).unwrap();
        assert_eq!(bytes, data);

        // And back to HV.
        let mut back = dst.migrate_to(Arc::new(HvCode::new(7).unwrap())).unwrap();
        let (bytes, _) = back.read(0, src.data_elements()).unwrap();
        assert_eq!(&bytes[..data.len()], &data[..]);
    }

    #[test]
    fn tally_accumulates_and_resets() {
        let mut v = volume(false);
        v.write(0, &pattern(3 * 16, 1)).unwrap();
        assert!(v.tally().total_writes() > 0);
        assert!(v.tally().total_reads() > 0);
        v.reset_tally();
        assert_eq!(v.tally().total(), 0);
    }
}
