//! Partitioned stripe-range ownership with work-stealing execution.
//!
//! The volume is split into contiguous stripe ranges ([`Partition`]s),
//! each owned by one worker. Ownership buys two things the flat
//! chunks-of-a-slice executor could not offer:
//!
//! * **Sharded accounting** — every worker carries a private
//!   [`LedgerShard`] and never touches a shared counter; the caller
//!   aggregates afterwards with [`raid_core::io::IoLedger::merge_shards`],
//!   whose result is independent of worker completion order.
//! * **Routing** — cross-range operations (multi-stripe cache flushes,
//!   `rebuild_all`, scrub) are split at partition boundaries with
//!   [`PartitionMap::split_range`] and each piece goes to its owner, so
//!   a rebuild parked in range A never serializes writes in range B.
//!
//! Skewed ranges are handled by a work-stealing fallback: a worker that
//! drains its own partitions claims stripes from the slowest remaining
//! partition cursor instead of idling. Claims go through per-partition
//! atomic cursors plus a `Mutex<Option<&mut Stripe>>` slot per stripe —
//! each stripe is handed to exactly one worker with no `unsafe` (this
//! crate forbids it) and results land indexed by stripe, so output order
//! is deterministic regardless of who executed what.

use crate::batch::effective_threads;
use raid_core::io::LedgerShard;
use raid_core::Stripe;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One contiguous stripe range `[start, end)` owned by one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Position of this partition in the map (its shard index).
    pub index: usize,
    /// First stripe owned (inclusive).
    pub start: usize,
    /// One past the last stripe owned.
    pub end: usize,
}

impl Partition {
    /// The owned stripe range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Number of stripes owned.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the partition owns no stripes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if `stripe` falls inside this partition.
    pub fn contains(&self, stripe: usize) -> bool {
        (self.start..self.end).contains(&stripe)
    }
}

/// The stripe-range → owner map: contiguous, near-equal partitions
/// covering `0..stripes` exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    stripes: usize,
    parts: Vec<Partition>,
}

impl PartitionMap {
    /// Splits `stripes` stripes into `partitions` contiguous near-equal
    /// ranges. The partition count is clamped to `[1, max(stripes, 1)]`
    /// so no partition is ever empty (except the degenerate zero-stripe
    /// map, which keeps one empty partition for shape stability).
    pub fn build(stripes: usize, partitions: usize) -> Self {
        let count = partitions.clamp(1, stripes.max(1));
        let base = stripes / count;
        let extra = stripes % count;
        let mut parts = Vec::with_capacity(count);
        let mut start = 0;
        for index in 0..count {
            let len = base + usize::from(index < extra);
            parts.push(Partition { index, start, end: start + len });
            start += len;
        }
        debug_assert_eq!(start, stripes);
        PartitionMap { stripes, parts }
    }

    /// A map sized to the host: one partition per logical core, clamped
    /// to the stripe count. On a 1-core host this degenerates to a single
    /// partition, which in turn clamps every worker request down to 1.
    pub fn auto(stripes: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        Self::build(stripes, cores)
    }

    /// Total stripes covered.
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if the map has no partitions (never — `build` keeps one).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The partitions, ascending by range.
    pub fn partitions(&self) -> &[Partition] {
        &self.parts
    }

    /// The partition owning `stripe`.
    ///
    /// # Panics
    ///
    /// Panics if `stripe` is outside the map.
    pub fn owner_of(&self, stripe: usize) -> usize {
        // Checked against `stripes`, not `stripes.max(1)`: a zero-stripe
        // map owns nothing, and its single empty partition would send the
        // probe below out of bounds (an index panic instead of this
        // message).
        assert!(stripe < self.stripes, "stripe {stripe} outside partition map");
        // Near-equal ranges: the owner is within one step of the
        // proportional guess, so this probe is O(1).
        let mut guess = (stripe * self.parts.len() / self.stripes.max(1))
            .min(self.parts.len() - 1);
        while !self.parts[guess].contains(stripe) {
            if self.parts[guess].start > stripe {
                guess -= 1;
            } else {
                guess += 1;
            }
        }
        guess
    }

    /// Splits a stripe range at partition boundaries: the pieces, in
    /// ascending order, each tagged with its owning partition. Empty
    /// input yields no pieces.
    pub fn split_range(&self, range: Range<usize>) -> Vec<(usize, Range<usize>)> {
        let mut pieces = Vec::new();
        let mut at = range.start;
        while at < range.end {
            let owner = self.owner_of(at);
            let piece_end = self.parts[owner].end.min(range.end);
            pieces.push((owner, at..piece_end));
            at = piece_end;
        }
        pieces
    }
}

/// Runs `work` over every stripe under partitioned ownership with up to
/// `threads` workers (clamped by stripe and partition count), returning
/// the per-stripe results **in stripe order** plus every worker's private
/// [`LedgerShard`] (pass them to [`raid_core::io::IoLedger::merge_shards`]).
///
/// Worker `w` first drains the partitions it owns (`p ≡ w mod threads`),
/// then steals from the remaining cursors, so a skewed range keeps every
/// worker busy. Which worker executes a stripe is timing-dependent; the
/// result vector and the merged shard totals are not, because results are
/// indexed by stripe and ledger merging is commutative.
///
/// With `threads <= 1` everything runs inline on the caller's thread in
/// stripe order — the serial path stays the serial path.
///
/// # Panics
///
/// Panics if `stripes.len()` does not match the map.
pub fn run_partitioned<T, F>(
    map: &PartitionMap,
    disks: usize,
    stripes: &mut [Stripe],
    threads: usize,
    work: F,
) -> (Vec<T>, Vec<LedgerShard>)
where
    T: Send,
    F: Fn(&mut LedgerShard, usize, &mut Stripe) -> T + Sync,
{
    assert_eq!(map.stripes(), stripes.len(), "partition map does not fit the batch");
    let threads = effective_threads(threads, stripes.len(), map.len());
    if threads <= 1 {
        let mut shard = LedgerShard::new(0, disks);
        let results = stripes
            .iter_mut()
            .enumerate()
            .map(|(i, s)| work(&mut shard, i, s))
            .collect();
        return (results, vec![shard]);
    }

    let cursors: Vec<AtomicUsize> =
        map.partitions().iter().map(|p| AtomicUsize::new(p.start)).collect();
    let slots: Vec<Mutex<Option<&mut Stripe>>> =
        stripes.iter_mut().map(|s| Mutex::new(Some(s))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let (work, cursors, slots, results) = (&work, &cursors, &slots, &results);

    let shards = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                s.spawn(move |_| {
                    let mut shard = LedgerShard::new(w, disks);
                    // Own partitions first, then steal from the rest.
                    let owned = (0..map.len()).filter(|p| p % threads == w);
                    let stealable = (0..map.len()).filter(|p| p % threads != w);
                    for p in owned.chain(stealable) {
                        let end = map.partitions()[p].end;
                        loop {
                            // `Relaxed` is sufficient — and audited, see
                            // `raid_verify::schedules`. The invariant the
                            // cursor upholds is *ticket uniqueness*: a
                            // single atomic RMW hands each index to
                            // exactly one worker, which needs only the
                            // RMW's total order on this one cell, not any
                            // cross-variable ordering. No data is
                            // published through the cursor: the stripe
                            // hand-off (and its happens-before edge) goes
                            // through the `slots[i]` Mutex below, and
                            // shard results flow through `scope` join.
                            // Overshoot is bounded, not prevented: every
                            // worker that loses the race draws one ticket
                            // past `end` and leaves, so the cursor never
                            // exceeds `end + workers` (regression test
                            // `overshoot_is_bounded_under_steal_pressure`).
                            let i = cursors[p].fetch_add(1, Ordering::Relaxed);
                            if i >= end {
                                break;
                            }
                            let stripe = slots[i]
                                .lock()
                                .expect("stripe slot poisoned")
                                .take()
                                .expect("stripe claimed twice");
                            let out = work(&mut shard, i, stripe);
                            *results[i].lock().expect("result slot poisoned") = Some(out);
                        }
                    }
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect::<Vec<LedgerShard>>()
    })
    .expect("partition scope failed");

    let collected = results
        .iter()
        .map(|m| {
            m.lock().expect("result slot poisoned").take().expect("stripe never executed")
        })
        .collect();
    (collected, shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raid_core::io::IoLedger;
    use raid_core::ArrayCode;

    #[test]
    fn build_covers_every_stripe_once() {
        for (stripes, parts) in [(10, 3), (7, 7), (5, 8), (1, 4), (16, 4)] {
            let map = PartitionMap::build(stripes, parts);
            assert_eq!(map.stripes(), stripes);
            assert!(map.len() <= stripes.max(1));
            let mut covered = 0;
            for (i, p) in map.partitions().iter().enumerate() {
                assert_eq!(p.index, i);
                assert_eq!(p.start, covered);
                assert!(!p.is_empty(), "empty partition in {stripes}x{parts}");
                covered = p.end;
            }
            assert_eq!(covered, stripes);
            // Near-equal: sizes differ by at most one.
            let sizes: Vec<usize> = map.partitions().iter().map(Partition::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn owner_of_agrees_with_ranges() {
        let map = PartitionMap::build(11, 4);
        for stripe in 0..11 {
            let owner = map.owner_of(stripe);
            assert!(map.partitions()[owner].contains(stripe));
        }
    }

    #[test]
    #[should_panic(expected = "outside partition map")]
    fn owner_of_rejects_out_of_range() {
        PartitionMap::build(4, 2).owner_of(4);
    }

    #[test]
    fn owner_of_at_exact_range_boundaries() {
        // 10 stripes / 3 partitions → [0,4) [4,7) [7,10): every boundary
        // stripe (last-of-range and first-of-next) must resolve to the
        // right side.
        let map = PartitionMap::build(10, 3);
        let ranges: Vec<_> = map.partitions().iter().map(Partition::range).collect();
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        for (p, r) in ranges.iter().enumerate() {
            assert_eq!(map.owner_of(r.start), p, "first stripe of partition {p}");
            assert_eq!(map.owner_of(r.end - 1), p, "last stripe of partition {p}");
        }
    }

    #[test]
    fn build_with_non_divisible_stripe_counts() {
        // Remainder stripes go to the leading partitions, one each.
        for (stripes, parts) in [(10usize, 4usize), (7, 3), (11, 5), (13, 6)] {
            let map = PartitionMap::build(stripes, parts);
            let sizes: Vec<usize> = map.partitions().iter().map(Partition::len).collect();
            assert_eq!(sizes.iter().sum::<usize>(), stripes);
            let extra = stripes % parts;
            for (i, &s) in sizes.iter().enumerate() {
                let want = stripes / parts + usize::from(i < extra);
                assert_eq!(s, want, "{stripes}x{parts} partition {i}");
            }
            for stripe in 0..stripes {
                assert!(map.partitions()[map.owner_of(stripe)].contains(stripe));
            }
        }
    }

    #[test]
    fn single_stripe_map_degenerates_to_one_partition() {
        for requested in [1usize, 2, 17] {
            let map = PartitionMap::build(1, requested);
            assert_eq!(map.len(), 1);
            assert_eq!(map.partitions()[0].range(), 0..1);
            assert_eq!(map.owner_of(0), 0);
            assert_eq!(map.split_range(0..1), vec![(0, 0..1)]);
        }
    }

    #[test]
    fn zero_stripe_map_keeps_shape_and_owns_nothing() {
        let map = PartitionMap::build(0, 4);
        assert_eq!(map.stripes(), 0);
        assert_eq!(map.len(), 1, "one empty partition for shape stability");
        assert!(map.partitions()[0].is_empty());
        assert!(map.split_range(0..0).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside partition map")]
    fn zero_stripe_map_rejects_owner_of_zero() {
        // Regression: this used to trip an index-out-of-bounds panic in
        // the probe loop instead of the intended assertion message.
        PartitionMap::build(0, 2).owner_of(0);
    }

    #[test]
    fn auto_covers_every_stripe_for_awkward_counts() {
        for stripes in [0usize, 1, 2, 5, 7, 9, 13] {
            let map = PartitionMap::auto(stripes);
            assert_eq!(map.stripes(), stripes);
            assert!(map.len() <= stripes.max(1));
            let mut covered = 0;
            for p in map.partitions() {
                assert_eq!(p.start, covered);
                covered = p.end;
            }
            assert_eq!(covered, stripes);
        }
    }

    /// Regression for cursor overshoot: many stealers racing one small
    /// partition each draw at most one ticket past `range.end`, so the
    /// shared cursor never exceeds `end + stealers` — and every stripe is
    /// still claimed exactly once.
    #[test]
    fn overshoot_is_bounded_under_steal_pressure() {
        for stealers in [2usize, 4, 8] {
            let end = 3usize;
            let cursor = AtomicUsize::new(0);
            let claimed: Vec<AtomicUsize> = (0..end).map(|_| AtomicUsize::new(0)).collect();
            crossbeam::thread::scope(|s| {
                for _ in 0..stealers {
                    s.spawn(|_| loop {
                        // The exact claim protocol of `run_partitioned`.
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= end {
                            break;
                        }
                        claimed[i].fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            let final_cursor = cursor.load(Ordering::Relaxed);
            assert!(
                (end + 1..=end + stealers).contains(&final_cursor),
                "{stealers} stealers left cursor at {final_cursor}"
            );
            for (i, c) in claimed.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "stripe {i} claim count");
            }
        }
    }

    #[test]
    fn run_partitioned_survives_overshooting_workers() {
        // More workers than stripes in every partition: every worker
        // overshoots every cursor it touches, and each stripe must still
        // execute exactly once with its result in place.
        let code = hv_code::HvCode::new(5).unwrap();
        let mut stripes: Vec<Stripe> =
            (0..3).map(|_| Stripe::for_layout(code.layout(), 8)).collect();
        let map = PartitionMap::build(stripes.len(), 3);
        let executed: Vec<AtomicUsize> =
            (0..stripes.len()).map(|_| AtomicUsize::new(0)).collect();
        let (results, shards) =
            run_partitioned(&map, 1, &mut stripes, 8, |shard, i, _stripe| {
                executed[i].fetch_add(1, Ordering::Relaxed);
                shard.add_reads(0, 1);
                i
            });
        assert_eq!(results, vec![0, 1, 2]);
        for (i, e) in executed.iter().enumerate() {
            assert_eq!(e.load(Ordering::Relaxed), 1, "stripe {i} executed more than once");
        }
        assert_eq!(IoLedger::merge_shards(1, shards).total_reads(), 3);
    }

    #[test]
    fn split_range_cuts_at_boundaries() {
        let map = PartitionMap::build(12, 3); // [0,4) [4,8) [8,12)
        assert_eq!(map.split_range(0..12), vec![(0, 0..4), (1, 4..8), (2, 8..12)]);
        assert_eq!(map.split_range(3..5), vec![(0, 3..4), (1, 4..5)]);
        assert_eq!(map.split_range(5..7), vec![(1, 5..7)]);
        assert!(map.split_range(6..6).is_empty());
    }

    #[test]
    fn run_partitioned_returns_results_in_stripe_order() {
        let code = hv_code::HvCode::new(7).unwrap();
        let layout = code.layout();
        let mut stripes: Vec<Stripe> = (0..9)
            .map(|i| {
                let mut s = Stripe::for_layout(layout, 16);
                s.fill_data_seeded(layout, i as u64);
                s
            })
            .collect();
        for threads in [1usize, 2, 4] {
            let map = PartitionMap::build(stripes.len(), 4);
            let (results, shards) =
                run_partitioned(&map, 3, &mut stripes, threads, |shard, i, _stripe| {
                    shard.add_reads(i % 3, 1);
                    i * 10
                });
            assert_eq!(results, (0..9).map(|i| i * 10).collect::<Vec<_>>());
            let merged = IoLedger::merge_shards(3, shards);
            assert_eq!(merged.total_reads(), 9);
            assert_eq!(merged.reads(), [3, 3, 3]);
        }
    }

    #[test]
    fn work_stealing_covers_skewed_maps() {
        // One partition holds almost everything; stealing must still
        // visit every stripe exactly once.
        let mut stripes: Vec<Stripe> = (0..32)
            .map(|_| Stripe::for_layout(hv_code::HvCode::new(5).unwrap().layout(), 8))
            .collect();
        let map = PartitionMap::build(stripes.len(), 2);
        let hits = AtomicUsize::new(0);
        let (results, shards) =
            run_partitioned(&map, 1, &mut stripes, 2, |shard, i, _stripe| {
                hits.fetch_add(1, Ordering::Relaxed);
                shard.add_reads(0, 1);
                i
            });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
        assert_eq!(results, (0..32).collect::<Vec<_>>());
        assert_eq!(IoLedger::merge_shards(1, shards).total_reads(), 32);
    }
}
