//! Linear data-element addressing over stripes, with optional rotation.

/// Maps a linear data-element address space onto stripes.
///
/// Data elements are numbered stripe by stripe in each stripe's row-major
/// data order (the paper's "continuous data elements"). With rotation
/// enabled, stripe `s` shifts its columns right by `s` positions on the
/// physical disks — the classic "stripe rotation" the paper discusses for
/// dedicated-parity codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Addressing {
    data_per_stripe: usize,
    disks: usize,
    rotate: bool,
}

/// One stripe-local segment of a linear request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Stripe index.
    pub stripe: usize,
    /// First data ordinal within the stripe.
    pub start: usize,
    /// Number of data elements in this segment.
    pub len: usize,
}

impl Addressing {
    /// Creates an addressing scheme.
    ///
    /// # Panics
    ///
    /// Panics if `data_per_stripe` or `disks` is zero.
    pub fn new(data_per_stripe: usize, disks: usize, rotate: bool) -> Self {
        assert!(data_per_stripe > 0, "stripe holds no data");
        assert!(disks > 0, "array has no disks");
        Addressing { data_per_stripe, disks, rotate }
    }

    /// Data elements per stripe.
    pub fn data_per_stripe(&self) -> usize {
        self.data_per_stripe
    }

    /// The stripe holding linear data-element address `addr`.
    pub fn stripe_of(&self, addr: usize) -> usize {
        addr / self.data_per_stripe
    }

    /// The inclusive stripe range `[first, last]` touched by `len`
    /// elements starting at `addr` (`len == 0` touches only `addr`'s
    /// stripe). The request scheduler buckets ops with this before
    /// dispatching each stripe to its owning partition.
    pub fn stripe_span(&self, addr: usize, len: usize) -> (usize, usize) {
        let last = addr + len.saturating_sub(1);
        (self.stripe_of(addr), self.stripe_of(last.max(addr)))
    }

    /// Whether stripe rotation is enabled.
    pub fn rotates(&self) -> bool {
        self.rotate
    }

    /// Splits a linear request `[start, start + len)` into stripe-local
    /// segments, in address order.
    pub fn split(&self, start: usize, len: usize) -> Vec<Segment> {
        let mut segs = Vec::new();
        let mut cur = start;
        let end = start + len;
        while cur < end {
            let stripe = cur / self.data_per_stripe;
            let offset = cur % self.data_per_stripe;
            let seg_len = (self.data_per_stripe - offset).min(end - cur);
            segs.push(Segment { stripe, start: offset, len: seg_len });
            cur += seg_len;
        }
        segs
    }

    /// The physical disk serving logical column `col` of stripe `stripe`.
    pub fn physical_disk(&self, stripe: usize, col: usize) -> usize {
        debug_assert!(col < self.disks);
        if self.rotate {
            (col + stripe) % self.disks
        } else {
            col
        }
    }

    /// Inverse of [`Addressing::physical_disk`].
    pub fn logical_col(&self, stripe: usize, disk: usize) -> usize {
        debug_assert!(disk < self.disks);
        if self.rotate {
            (disk + self.disks - stripe % self.disks) % self.disks
        } else {
            disk
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_within_one_stripe() {
        let a = Addressing::new(10, 4, false);
        assert_eq!(a.split(3, 4), vec![Segment { stripe: 0, start: 3, len: 4 }]);
    }

    #[test]
    fn split_across_stripes() {
        let a = Addressing::new(10, 4, false);
        assert_eq!(
            a.split(8, 15),
            vec![
                Segment { stripe: 0, start: 8, len: 2 },
                Segment { stripe: 1, start: 0, len: 10 },
                Segment { stripe: 2, start: 0, len: 3 },
            ]
        );
    }

    #[test]
    fn empty_request_yields_no_segments() {
        let a = Addressing::new(10, 4, false);
        assert!(a.split(5, 0).is_empty());
    }

    #[test]
    fn rotation_round_trips() {
        let a = Addressing::new(6, 5, true);
        for stripe in 0..12 {
            for col in 0..5 {
                let d = a.physical_disk(stripe, col);
                assert_eq!(a.logical_col(stripe, d), col, "stripe {stripe} col {col}");
            }
        }
    }

    #[test]
    fn no_rotation_is_identity() {
        let a = Addressing::new(6, 5, false);
        for stripe in 0..3 {
            for col in 0..5 {
                assert_eq!(a.physical_disk(stripe, col), col);
            }
        }
    }

    #[test]
    fn rotation_spreads_a_fixed_column() {
        let a = Addressing::new(6, 5, true);
        let disks: std::collections::HashSet<_> =
            (0..5).map(|s| a.physical_disk(s, 0)).collect();
        assert_eq!(disks.len(), 5, "column 0 must visit every disk");
    }
}
