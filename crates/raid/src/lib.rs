//! A RAID-6 controller over any [`raid_core::ArrayCode`].
//!
//! [`volume::RaidVolume`] is the piece a downstream user actually mounts:
//! it stripes a data-element address space over a pluggable
//! [`backend::DiskBackend`] (in-memory, file-per-disk, or fault-injecting),
//! performs read-modify-write partial stripe writes with incremental parity
//! updates, serves degraded reads while disks are failed, and rebuilds one
//! or two failed disks.
//!
//! Every operation lowers into the single [`pipeline::IoPipeline`]: element
//! reads, a compiled [`raid_core::XorPlan`], element writes. The pipeline
//! executes that form against the backend, hands the identical per-disk
//! [`raid_core::io::RequestSet`] to the timing simulator when one is
//! attached, and absorbs it into the [`raid_core::io::IoLedger`] — so data
//! movement, simulated time, and the paper's request accounting always
//! agree.
//!
//! [`addr`] maps the linear data-element address space onto stripes and
//! optionally rotates stripes across disks ("stripe rotation", the
//! traditional balancing technique the paper contrasts with parity
//! spreading). [`partition`] splits the stripe space into contiguous
//! owned ranges with work-stealing workers and per-worker ledger shards;
//! [`batch`] runs encode/decode XOR kernels for batches of independent
//! stripes on those partitioned workers; [`replay`] drives a volume +
//! simulator pair from workload traces. [`cache`] adds the write-back
//! stripe cache that coalesces co-located element writes into single
//! journal-atomic flushes sharing parity I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod audit;
pub mod backend;
pub mod batch;
pub mod cache;
pub mod chaos;
pub mod health;
pub mod mttr;
pub mod partition;
pub mod pipeline;
pub mod reliability;
pub mod replay;
pub mod volume;

pub use addr::Addressing;
pub use backend::{
    DiskBackend, DiskCompletion, DiskRequest, Fault, FaultPoint, FaultyBackend, FileBackend,
    JournalEntry, JournalRecovery, MemBackend, RebuildCheckpoint, VolumeMeta,
};
pub use batch::{encode_batch, rebuild_batch};
pub use cache::{batched_write_steps, CacheConfig};
pub use chaos::{ChaosConfig, ChaosReport};
pub use health::{
    HealthMonitor, HealthState, RebuildThrottle, RecoveryAction, RetryPolicy, ThrottleConfig,
};
pub use partition::{run_partitioned, Partition, PartitionMap};
pub use pipeline::{DiskAddr, IoPipeline, LoweredOp};
pub use replay::{replay_read_patterns, replay_write_trace, ReadReplay, WriteReplay};
pub use volume::{RaidVolume, VolumeError};
