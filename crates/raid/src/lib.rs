//! A RAID-6 controller over any [`raid_core::ArrayCode`].
//!
//! [`volume::RaidVolume`] is the piece a downstream user actually mounts:
//! it stripes a data-element address space over an in-memory disk array,
//! performs read-modify-write partial stripe writes with incremental parity
//! updates, serves degraded reads while disks are failed, and rebuilds one
//! or two failed disks — all while tallying per-disk I/O exactly the way
//! the paper's evaluation counts it (element read/write requests).
//!
//! [`addr`] maps the linear data-element address space onto stripes and
//! optionally rotates stripes across disks ("stripe rotation", the
//! traditional balancing technique the paper contrasts with parity
//! spreading). [`batch`] encodes or rebuilds batches of independent
//! stripes on scoped worker threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod batch;
pub mod mttr;
pub mod reliability;
pub mod replay;
pub mod volume;

pub use addr::Addressing;
pub use batch::{encode_batch, rebuild_batch};
pub use replay::{replay_read_patterns, replay_write_trace, ReadReplay, WriteReplay};
pub use volume::{RaidVolume, VolumeError};
