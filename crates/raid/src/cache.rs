//! Write-back stripe cache: a dirty-stripe map between the volume and the
//! I/O pipeline.
//!
//! The cache absorbs element writes per stripe and defers the parity
//! update until flush time, when every dirty element of a stripe is
//! batched into **one** lowered operation (see
//! [`raid_core::plan::write::plan_batched_write`]). Co-located dirty
//! elements then share their parity reads and writes — the HV paper's
//! shared-parity structure turned into an I/O win — and the single
//! lowered op rides the pipeline's undo journal, so a coalesced flush is
//! atomic across crashes.
//!
//! The map itself is policy-free storage plus bookkeeping; the flush
//! policy (dirty high-water mark, LRU eviction under the memory budget,
//! explicit `flush()`/drop barrier) lives in
//! [`crate::volume::RaidVolume`], which owns the pipeline the flushes
//! must go through.

use std::collections::BTreeMap;

use raid_core::layout::Layout;
use raid_core::plan::write::{WriteMode, WritePlan};
use raid_core::Cell;

/// Write-back cache tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Memory budget: maximum stripes resident (dirty or clean). The
    /// least-recently-used entry is evicted beyond this.
    pub max_stripes: usize,
    /// Flush trigger: writing while more than this many stripes are dirty
    /// flushes the least-recently-used dirty stripes down to the mark.
    pub dirty_high_water: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { max_stripes: 64, dirty_high_water: 48 }
    }
}

/// One cached stripe: the data elements the cache has seen, with
/// per-element presence and dirtiness.
#[derive(Debug, Clone)]
pub(crate) struct StripeEntry {
    data: Vec<u8>,
    present: Vec<bool>,
    dirty: Vec<bool>,
    element_size: usize,
}

impl StripeEntry {
    fn new(per_stripe: usize, element_size: usize) -> Self {
        StripeEntry {
            data: vec![0; per_stripe * element_size],
            present: vec![false; per_stripe],
            dirty: vec![false; per_stripe],
            element_size,
        }
    }

    /// The cached bytes of data ordinal `ord` (valid only when present).
    pub(crate) fn element(&self, ord: usize) -> &[u8] {
        &self.data[ord * self.element_size..(ord + 1) * self.element_size]
    }

    /// True if the cache holds a copy of ordinal `ord` (dirty or clean).
    pub(crate) fn is_present(&self, ord: usize) -> bool {
        self.present[ord]
    }

    /// True if the cached copy of `ord` matches the disks (present and
    /// not dirty) — safe to substitute for a disk read.
    pub(crate) fn is_clean(&self, ord: usize) -> bool {
        self.present[ord] && !self.dirty[ord]
    }

    /// Stores new bytes for `ord`, marking it present **and dirty**.
    pub(crate) fn write(&mut self, ord: usize, bytes: &[u8]) {
        self.data[ord * self.element_size..(ord + 1) * self.element_size]
            .copy_from_slice(bytes);
        self.present[ord] = true;
        self.dirty[ord] = true;
    }

    /// Stores bytes read from disk for `ord` (present, clean). A dirty
    /// copy is never downgraded — the cache is authoritative for it.
    pub(crate) fn fill(&mut self, ord: usize, bytes: &[u8]) {
        if self.dirty[ord] {
            return;
        }
        self.data[ord * self.element_size..(ord + 1) * self.element_size]
            .copy_from_slice(bytes);
        self.present[ord] = true;
    }

    /// Drops a clean cached copy of `ord` (out-of-band tampering hook).
    pub(crate) fn invalidate_clean(&mut self, ord: usize) {
        if !self.dirty[ord] {
            self.present[ord] = false;
        }
    }

    /// The dirty data ordinals, ascending.
    pub(crate) fn dirty_ordinals(&self) -> Vec<usize> {
        (0..self.dirty.len()).filter(|&o| self.dirty[o]).collect()
    }

    /// True if any element is dirty.
    pub(crate) fn is_dirty(&self) -> bool {
        self.dirty.iter().any(|&d| d)
    }

    /// Marks every element clean (a successful flush: disks now match).
    pub(crate) fn mark_clean(&mut self) {
        self.dirty.fill(false);
    }
}

/// The dirty-stripe map: cached [`StripeEntry`]s keyed by stripe index,
/// with LRU order tracked for the eviction policy.
pub(crate) struct StripeCache {
    cfg: CacheConfig,
    per_stripe: usize,
    element_size: usize,
    entries: BTreeMap<usize, StripeEntry>,
    /// Stripe indices, least-recently-used first.
    lru: Vec<usize>,
}

impl StripeCache {
    pub(crate) fn new(cfg: CacheConfig, per_stripe: usize, element_size: usize) -> Self {
        assert!(cfg.max_stripes > 0, "cache needs room for at least one stripe");
        StripeCache { cfg, per_stripe, element_size, entries: BTreeMap::new(), lru: Vec::new() }
    }

    pub(crate) fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Resident stripes (dirty or clean).
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Resident stripes holding at least one dirty element.
    pub(crate) fn dirty_count(&self) -> usize {
        self.entries.values().filter(|e| e.is_dirty()).count()
    }

    pub(crate) fn get(&self, stripe: usize) -> Option<&StripeEntry> {
        self.entries.get(&stripe)
    }

    /// The entry for `stripe`, created empty if absent, promoted to
    /// most-recently-used either way.
    pub(crate) fn ensure(&mut self, stripe: usize) -> &mut StripeEntry {
        self.promote(stripe);
        let (per, es) = (self.per_stripe, self.element_size);
        self.entries.entry(stripe).or_insert_with(|| StripeEntry::new(per, es))
    }

    /// Moves `stripe` to the most-recently-used position.
    pub(crate) fn promote(&mut self, stripe: usize) {
        self.lru.retain(|&s| s != stripe);
        self.lru.push(stripe);
    }

    /// Removes and returns the entry (e.g. to flush it without holding a
    /// borrow on the cache).
    pub(crate) fn take(&mut self, stripe: usize) -> Option<StripeEntry> {
        self.entries.remove(&stripe)
    }

    /// Reinserts an entry taken with [`StripeCache::take`], keeping its
    /// LRU position.
    pub(crate) fn put_back(&mut self, stripe: usize, entry: StripeEntry) {
        self.entries.insert(stripe, entry);
        if !self.lru.contains(&stripe) {
            self.lru.push(stripe);
        }
    }

    /// Drops `stripe` entirely (eviction).
    pub(crate) fn remove(&mut self, stripe: usize) {
        self.entries.remove(&stripe);
        self.lru.retain(|&s| s != stripe);
    }

    /// The least-recently-used dirty stripe.
    pub(crate) fn oldest_dirty(&self) -> Option<usize> {
        self.lru
            .iter()
            .copied()
            .find(|s| self.entries.get(s).is_some_and(StripeEntry::is_dirty))
    }

    /// The least-recently-used fully-clean stripe (free to evict).
    pub(crate) fn oldest_clean(&self) -> Option<usize> {
        self.lru
            .iter()
            .copied()
            .find(|s| self.entries.get(s).is_some_and(|e| !e.is_dirty()))
    }

    /// The least-recently-used stripe of all.
    pub(crate) fn oldest(&self) -> Option<usize> {
        self.lru.iter().copied().find(|s| self.entries.contains_key(s))
    }

    /// Every stripe currently dirty, ascending.
    pub(crate) fn dirty_stripes(&self) -> Vec<usize> {
        self.entries
            .iter()
            .filter(|(_, e)| e.is_dirty())
            .map(|(&s, _)| s)
            .collect()
    }
}

/// Orders parity cells so that no parity is emitted before a pending
/// parity that appears among its chain members (parity-into-parity
/// cascades, e.g. RDP).
pub(crate) fn ordered_parities(layout: &Layout, parities: &[Cell]) -> Vec<Cell> {
    let mut pending: Vec<Cell> = parities.to_vec();
    let mut ordered = Vec::with_capacity(pending.len());
    while !pending.is_empty() {
        let mut progressed = false;
        let mut next = Vec::new();
        for &p in &pending {
            let chain = layout.chain(layout.chain_of_parity(p).expect("parity owns chain"));
            if chain.members.iter().any(|m| pending.contains(m) && *m != p) {
                next.push(p);
            } else {
                ordered.push(p);
                progressed = true;
            }
        }
        assert!(progressed, "cyclic parity dependency during write");
        pending = next;
    }
    ordered
}

/// Builds the XOR steps that renew a [`WritePlan`]'s parities over a
/// double-height scratch: old values in the lower `rows` rows, new values
/// in the upper. This one lowering serves both the volume's direct
/// partial writes and the cache's coalesced flushes, and is what
/// `raid-verify` proves symbolically for arbitrary dirty sets.
///
/// * [`WriteMode::Rmw`] — new parity = old parity ⊕ (old ⊕ new) of every
///   touched member;
/// * [`WriteMode::Reconstruct`] / [`WriteMode::FullStripe`] — new parity
///   = XOR of members' new values, untouched members contributing their
///   (read or cache-filled) old value.
pub fn batched_write_steps(
    layout: &Layout,
    plan: &WritePlan,
    mode: WriteMode,
) -> Vec<(Cell, Vec<Cell>)> {
    let rows = layout.rows();
    let up = |c: Cell| Cell::new(c.row + rows, c.col);
    let touched = |m: &Cell| plan.data_writes.contains(m) || plan.parity_writes.contains(m);
    ordered_parities(layout, &plan.parity_writes)
        .into_iter()
        .map(|p| {
            let chain = layout.chain(layout.chain_of_parity(p).expect("parity owns chain"));
            let mut srcs = Vec::new();
            match mode {
                WriteMode::Rmw => {
                    srcs.push(p);
                    for m in &chain.members {
                        if touched(m) {
                            srcs.push(*m);
                            srcs.push(up(*m));
                        }
                    }
                }
                WriteMode::Reconstruct | WriteMode::FullStripe => {
                    for m in &chain.members {
                        srcs.push(if touched(m) { up(*m) } else { *m });
                    }
                }
            }
            (up(p), srcs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_tracks_presence_and_dirtiness() {
        let mut e = StripeEntry::new(4, 8);
        assert!(!e.is_present(0) && !e.is_dirty());
        e.write(1, &[7; 8]);
        assert!(e.is_present(1) && !e.is_clean(1) && e.is_dirty());
        assert_eq!(e.element(1), &[7; 8]);
        assert_eq!(e.dirty_ordinals(), vec![1]);

        // A read-through fill never downgrades a dirty copy.
        e.fill(1, &[9; 8]);
        assert_eq!(e.element(1), &[7; 8]);
        e.fill(2, &[3; 8]);
        assert!(e.is_clean(2));

        e.mark_clean();
        assert!(!e.is_dirty() && e.is_clean(1));
        e.invalidate_clean(1);
        assert!(!e.is_present(1));
    }

    #[test]
    fn lru_order_and_policy_queries() {
        let mut c = StripeCache::new(CacheConfig::default(), 2, 4);
        c.ensure(0).write(0, &[1; 4]);
        c.ensure(1).write(0, &[2; 4]);
        c.ensure(2).fill(0, &[3; 4]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.dirty_count(), 2);
        assert_eq!(c.oldest(), Some(0));
        assert_eq!(c.oldest_dirty(), Some(0));
        assert_eq!(c.oldest_clean(), Some(2));

        // Touching stripe 0 makes stripe 1 the oldest dirty.
        c.promote(0);
        assert_eq!(c.oldest_dirty(), Some(1));
        assert_eq!(c.dirty_stripes(), vec![0, 1]);

        let mut taken = c.take(1).unwrap();
        taken.mark_clean();
        c.put_back(1, taken);
        assert_eq!(c.dirty_count(), 1);
        c.remove(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.oldest_clean(), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_budget_rejected() {
        StripeCache::new(
            CacheConfig { max_stripes: 0, dirty_high_water: 0 },
            2,
            4,
        );
    }
}
