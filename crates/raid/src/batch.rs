//! Parallel stripe batch executor.
//!
//! Stripes are independent by construction — no parity chain crosses a
//! stripe boundary — so encoding or rebuilding a batch of them is
//! embarrassingly parallel. Batches run under partitioned ownership
//! ([`crate::partition`]): the batch is split into contiguous stripe
//! ranges, each drained by its owning worker with work-stealing for
//! skewed ranges. With `threads <= 1` (or a single-stripe batch)
//! everything runs inline on the caller's thread with zero spawn
//! overhead, so the serial path stays the serial path.
//!
//! The per-stripe work itself is the compiled-plan interpreter
//! ([`raid_core::XorPlan`]): the plan is compiled once per layout and
//! shared read-only across workers, so adding threads adds no redundant
//! geometry math.

use crate::partition::{run_partitioned, PartitionMap};
use raid_core::decoder::NotDecodableError;
use raid_core::{ArrayCode, Cell, Stripe};

/// Clamps a requested worker count to something sane for a batch of
/// `stripes` independent stripes spread over `partitions` owned ranges:
/// at least 1, at most one worker per stripe, and never more workers
/// than partitions — requesting 8 threads on a 4-partition volume gets
/// 4 workers, not 4 busy ones plus 4 idling.
pub fn effective_threads(requested: usize, stripes: usize, partitions: usize) -> usize {
    requested.max(1).min(stripes.max(1)).min(partitions.max(1))
}

/// Runs `work` over every stripe in the batch on `threads` partitioned
/// workers. Results are collected per stripe, in order; the workers'
/// ledger shards are dropped because batch-level stripe transforms do
/// their accounting at the volume layer, where the ops are lowered.
fn run_batch<T, F>(stripes: &mut [Stripe], threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Stripe) -> T + Sync,
{
    let map = PartitionMap::build(stripes.len(), threads.max(1));
    let (results, _shards) =
        run_partitioned(&map, 0, stripes, threads, |_shard, _i, stripe| work(stripe));
    results
}

/// Recomputes every parity of every stripe in the batch, using up to
/// `threads` worker threads.
///
/// # Panics
///
/// Panics if any stripe's shape does not match the code's layout.
pub fn encode_batch(code: &dyn ArrayCode, stripes: &mut [Stripe], threads: usize) {
    run_batch(stripes, threads, |stripe| code.encode(stripe));
}

/// Rebuilds the given failed disks (columns) in every stripe of the
/// batch, using up to `threads` worker threads. Lost elements are zeroed
/// before decoding, mirroring a replacement disk coming up blank.
///
/// # Errors
///
/// Returns the first [`NotDecodableError`] any stripe produced; stripes
/// decoded by other workers may already have been rebuilt.
pub fn rebuild_batch(
    code: &dyn ArrayCode,
    stripes: &mut [Stripe],
    lost_disks: &[usize],
    threads: usize,
) -> Result<(), NotDecodableError> {
    let layout = code.layout();
    let lost: Vec<Cell> = lost_disks
        .iter()
        .flat_map(|&col| (0..layout.rows()).map(move |row| Cell { row, col }))
        .collect();
    let zero = vec![0u8; stripes.first().map_or(0, Stripe::element_size)];
    let results = run_batch(stripes, threads, |stripe| {
        for &cell in &lost {
            stripe.set_element(cell, &zero);
        }
        code.decode(stripe, &lost).map(drop)
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_code::HvCode;
    use raid_baselines::RdpCode;

    fn batch(code: &dyn ArrayCode, n: usize) -> Vec<Stripe> {
        (0..n)
            .map(|i| {
                let mut s = Stripe::for_layout(code.layout(), 64);
                s.fill_data_seeded(code.layout(), i as u64 + 1);
                code.encode(&mut s);
                s
            })
            .collect()
    }

    #[test]
    fn parallel_encode_matches_serial() {
        let code = HvCode::new(11).unwrap();
        let mut serial = batch(&code, 13);
        let mut parallel = serial.clone();
        // Dirty the parities so encode has real work to redo.
        encode_batch(&code, &mut serial, 1);
        encode_batch(&code, &mut parallel, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_rebuild_restores_every_stripe() {
        for threads in [1usize, 3, 8] {
            let code = RdpCode::new(13).unwrap();
            let pristine = batch(&code, 7);
            let mut damaged = pristine.clone();
            rebuild_batch(&code, &mut damaged, &[0, 5], threads).unwrap();
            assert_eq!(damaged, pristine, "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_stripes_is_fine() {
        let code = HvCode::new(7).unwrap();
        let pristine = batch(&code, 2);
        let mut damaged = pristine.clone();
        rebuild_batch(&code, &mut damaged, &[1], 16).unwrap();
        assert_eq!(damaged, pristine);
    }

    #[test]
    fn undecodable_pattern_reports_error() {
        let code = HvCode::new(7).unwrap();
        let mut stripes = batch(&code, 3);
        assert!(rebuild_batch(&code, &mut stripes, &[0, 1, 2], 2).is_err());
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(0, 10, 10), 1);
        assert_eq!(effective_threads(4, 2, 4), 2);
        assert_eq!(effective_threads(4, 0, 4), 1);
        // More threads than partitions must not spawn idle workers.
        assert_eq!(effective_threads(8, 100, 4), 4);
    }

    #[test]
    fn effective_threads_one_core_degenerate() {
        // A 1-core host builds 1-partition maps: any request collapses
        // to the inline serial path, spawning nothing.
        assert_eq!(effective_threads(8, 100, 1), 1);
        assert_eq!(effective_threads(1, 1, 1), 1);
        assert_eq!(effective_threads(usize::MAX, 100, 1), 1);
    }
}
