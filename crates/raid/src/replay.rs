//! Trace replay: drive a [`RaidVolume`] with a workload trace while an
//! attached [`DiskArray`] simulator accounts the time — the engine behind
//! the paper's Fig. 6/7 experiments, exposed as a library so applications
//! can evaluate a code on their own traces.
//!
//! The simulator is attached to the volume's I/O pipeline for the duration
//! of the replay, so it is timed with *exactly* the per-disk
//! [`raid_core::io::RequestSet`]s the volume executed — there is no second
//! derivation of the request pattern here. It stays attached afterwards
//! (detach with [`RaidVolume::detach_sim`] if needed).

use disk_sim::{DiskArray, DiskError};
use raid_core::io::IoLedger;
use raid_workloads::{ReadPattern, WriteTrace};

use crate::volume::{RaidVolume, VolumeError};

/// Outcome of replaying a write trace.
#[derive(Debug, Clone)]
pub struct WriteReplay {
    /// Patterns executed (repetitions included).
    pub patterns: u64,
    /// Per-pattern simulated latencies, milliseconds.
    pub latencies_ms: Vec<f64>,
    /// The volume's I/O ledger delta for this replay.
    pub ledger: IoLedger,
    /// Per-disk requests the simulator actually served during the replay
    /// (equals `ledger.per_disk_totals()` by construction — the pipeline
    /// hands both the same stream).
    pub served: Vec<u64>,
}

impl WriteReplay {
    /// Total element-write requests — Fig. 6a's metric.
    pub fn total_write_requests(&self) -> u64 {
        self.ledger.total_writes()
    }

    /// Load balancing rate λ over writes — Fig. 6b's metric.
    pub fn lambda(&self) -> f64 {
        self.ledger.write_balance_rate()
    }

    /// Mean simulated latency per pattern — Fig. 6c's metric.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            0.0
        } else {
            self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
        }
    }
}

/// Errors from replaying a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The volume rejected an operation.
    Volume(VolumeError),
    /// The simulator rejected a request.
    Disk(DiskError),
    /// Simulator and volume disagree on the number of disks.
    ShapeMismatch {
        /// Disks in the volume.
        volume: usize,
        /// Disks in the simulator.
        sim: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Volume(e) => e.fmt(f),
            ReplayError::Disk(e) => e.fmt(f),
            ReplayError::ShapeMismatch { volume, sim } => {
                write!(f, "volume has {volume} disks but simulator has {sim}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<VolumeError> for ReplayError {
    fn from(e: VolumeError) -> Self {
        ReplayError::Volume(e)
    }
}

impl From<DiskError> for ReplayError {
    fn from(e: DiskError) -> Self {
        ReplayError::Disk(e)
    }
}

/// Attaches `sim` to the volume's pipeline, mapping shape complaints to
/// [`ReplayError::ShapeMismatch`].
fn attach(volume: &mut RaidVolume, sim: DiskArray) -> Result<(), ReplayError> {
    let disks = sim.disks();
    volume.attach_sim(sim).map_err(|_| ReplayError::ShapeMismatch {
        volume: volume.disks(),
        sim: disks,
    })
}

/// Replays a write trace pattern by pattern. Each pattern is one volume
/// write; its simulated latency is the makespan sum of the request batches
/// the pipeline committed for it. Pattern starts are clipped to the
/// volume's capacity.
///
/// # Errors
///
/// Returns [`ReplayError`] on shape mismatches or if the volume rejects an
/// operation (e.g. too many failed disks).
pub fn replay_write_trace(
    volume: &mut RaidVolume,
    sim: DiskArray,
    trace: &WriteTrace,
) -> Result<WriteReplay, ReplayError> {
    attach(volume, sim)?;
    let element = volume.element_size();
    let baseline = volume.ledger().clone();
    let served_before = volume.sim().expect("just attached").served();
    let mut latencies = Vec::new();
    let mut buf = vec![0u8; 64 * element];
    let mut patterns = 0u64;

    for (start, len) in trace.expanded() {
        let start = start.min(volume.data_elements() - 1);
        let len = len.min(volume.data_elements() - start);
        if buf.len() < len * element {
            buf.resize(len * element, 0);
        }
        buf[0] = buf[0].wrapping_add(1);
        volume.write(start, &buf[..len * element])?;
        latencies.push(volume.last_op_latency_ms());
        patterns += 1;
    }
    // A write-back cache may still hold absorbed writes: flush before
    // taking the delta so the replay's ledger (and the simulator's served
    // stream) includes the coalesced flush I/O this trace caused.
    volume.flush()?;

    let ledger = volume.ledger().delta_since(&baseline);
    let served = volume
        .sim()
        .expect("sim stays attached")
        .served()
        .iter()
        .zip(&served_before)
        .map(|(now, before)| now - before)
        .collect();
    Ok(WriteReplay { patterns, latencies_ms: latencies, ledger, served })
}

/// Outcome of replaying degraded-read patterns.
#[derive(Debug, Clone)]
pub struct ReadReplay {
    /// Per-pattern simulated latencies, milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Per-pattern I/O efficiencies `L′/L` — Fig. 7b's metric.
    pub efficiencies: Vec<f64>,
    /// The volume's I/O ledger delta for this replay.
    pub ledger: IoLedger,
}

impl ReadReplay {
    /// Mean simulated latency per pattern — Fig. 7a's metric.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            0.0
        } else {
            self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
        }
    }

    /// Mean `L′/L`.
    pub fn mean_efficiency(&self) -> f64 {
        if self.efficiencies.is_empty() {
            0.0
        } else {
            self.efficiencies.iter().sum::<f64>() / self.efficiencies.len() as f64
        }
    }
}

/// Replays read patterns against a (possibly degraded) volume; the
/// simulator's failure state is synced from the volume on attach.
///
/// # Errors
///
/// Returns [`ReplayError`] on shape mismatches or volume errors.
pub fn replay_read_patterns(
    volume: &mut RaidVolume,
    sim: DiskArray,
    patterns: &[ReadPattern],
) -> Result<ReadReplay, ReplayError> {
    attach(volume, sim)?;
    let baseline = volume.ledger().clone();
    let mut latencies = Vec::with_capacity(patterns.len());
    let mut efficiencies = Vec::with_capacity(patterns.len());
    for pat in patterns {
        let start = pat.start.min(volume.data_elements().saturating_sub(pat.len));
        let (_, receipt) = volume.read(start, pat.len)?;
        latencies.push(volume.last_op_latency_ms());
        efficiencies.push(receipt.total_reads() as f64 / pat.len as f64);
    }
    let ledger = volume.ledger().delta_since(&baseline);
    Ok(ReadReplay { latencies_ms: latencies, efficiencies, ledger })
}

#[cfg(test)]
mod tests {
    use super::*;
    use disk_sim::DiskProfile;
    use hv_code::HvCode;
    use raid_workloads::{degraded_read_patterns, uniform_write_trace};
    use std::sync::Arc;

    fn setup() -> (RaidVolume, DiskArray) {
        let v = RaidVolume::in_memory(Arc::new(HvCode::new(7).unwrap()), 5, 8);
        let sim = DiskArray::new(v.disks(), DiskProfile::savvio_10k());
        (v, sim)
    }

    #[test]
    fn write_replay_accumulates() {
        let (mut v, sim) = setup();
        let trace = uniform_write_trace(5, 40, v.data_elements() - 5, 3);
        let out = replay_write_trace(&mut v, sim, &trace).unwrap();
        assert_eq!(out.patterns, 40);
        assert_eq!(out.latencies_ms.len(), 40);
        assert!(out.total_write_requests() >= 40 * 5);
        assert!(out.lambda() >= 1.0);
        assert!(out.mean_latency_ms() > 0.0);
    }

    #[test]
    fn simulator_serves_exactly_the_ledger() {
        let (mut v, sim) = setup();
        let trace = uniform_write_trace(4, 25, v.data_elements() - 4, 7);
        let out = replay_write_trace(&mut v, sim, &trace).unwrap();
        assert_eq!(
            out.served,
            out.ledger.per_disk_totals(),
            "the simulator must be handed the very stream the ledger absorbed"
        );
    }

    #[test]
    fn read_replay_reports_efficiency() {
        let (mut v, sim) = setup();
        v.fail_disk(2).unwrap();
        // attach_sim syncs the failure into the simulator.
        let pats = degraded_read_patterns(5, 30, v.data_elements() - 5, 9);
        let out = replay_read_patterns(&mut v, sim, &pats).unwrap();
        assert_eq!(out.efficiencies.len(), 30);
        assert!(out.mean_efficiency() >= 1.0);
        assert!(out.mean_latency_ms() > 0.0);
        assert!(v.sim().unwrap().is_failed(2));
    }

    #[test]
    fn cached_replay_flushes_and_coalesces() {
        let trace = uniform_write_trace(3, 60, 30, 11);
        let (mut v, sim) = setup();
        let uncached = replay_write_trace(&mut v, sim, &trace).unwrap();

        let (mut v, sim) = setup();
        v.enable_cache(crate::cache::CacheConfig::default());
        let cached = replay_write_trace(&mut v, sim, &trace).unwrap();

        assert_eq!(cached.patterns, uncached.patterns);
        assert!(cached.ledger.cache_flushes() > 0, "the replay must flush the cache");
        assert_eq!(v.cache_dirty_stripes(), 0, "no dirty stripe may outlive the replay");
        assert!(
            cached.ledger.total() < uncached.ledger.total(),
            "coalescing must cut total element I/O ({} vs {})",
            cached.ledger.total(),
            uncached.ledger.total()
        );
        assert_eq!(
            cached.served,
            cached.ledger.per_disk_totals(),
            "flush I/O must reach the simulator and the ledger identically"
        );
    }

    #[test]
    fn shape_mismatch_detected() {
        let (mut v, _) = setup();
        let wrong = DiskArray::new(3, DiskProfile::savvio_10k());
        let trace = uniform_write_trace(2, 1, 10, 0);
        assert!(matches!(
            replay_write_trace(&mut v, wrong, &trace),
            Err(ReplayError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn replay_ledger_is_a_delta() {
        let (mut v, sim) = setup();
        // Pre-existing traffic must not leak into the replay's ledger.
        v.write(0, &[1u8; 8 * 4]).unwrap();
        let before = v.ledger().total();
        assert!(before > 0);
        let trace = uniform_write_trace(2, 5, 20, 1);
        let out = replay_write_trace(&mut v, sim, &trace).unwrap();
        assert_eq!(out.ledger.total() + before, v.ledger().total());
    }
}
