//! Volume health: failure state machine and retry/backoff policy.
//!
//! The paper's reliability argument (Section V-D, Fig. 9) is about how
//! long an array spends exposed — degraded or critical — before repair
//! completes. This module gives the runtime the bookkeeping side of that
//! story: a [`HealthState`] machine
//! (`Healthy → Degraded(1) → Critical(2) → Failed`) driven by the failed
//! -disk count, and a [`HealthMonitor`] that classifies every
//! [`DiskError`] through the [`ErrorClass`] taxonomy into one
//! [`RecoveryAction`]:
//!
//! * **transient** errors are retried with exponential backoff (virtual —
//!   accumulated milliseconds, no sleeping), escalating to disk-dead when
//!   a disk's consecutive-failure streak exhausts the policy;
//! * **latent sectors** are repaired in place (reconstruct from the parity
//!   chains, rewrite), escalating to disk-dead once a disk accumulates too
//!   many of them — the classic "reallocated sector count" SMART trip;
//! * **disk-dead** errors degrade the array immediately;
//! * **crashes** and programming errors are fatal to the operation.
//!
//! The monitor is pure bookkeeping — it never touches a backend — so the
//! policy is unit-testable without I/O; [`crate::volume::RaidVolume`]
//! executes the actions it returns.

use std::collections::BTreeMap;

use disk_sim::{DiskError, ErrorClass};

/// Array-level health, a function of how many disks hold invalid data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// All disks valid.
    Healthy,
    /// One disk invalid: every chain still decodable, no slack.
    Degraded,
    /// Two disks invalid: at the RAID-6 correction limit.
    Critical,
    /// More than two disks invalid: data loss.
    Failed,
}

impl HealthState {
    /// The state implied by `failed` invalid disks.
    pub fn from_failed_count(failed: usize) -> Self {
        match failed {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            2 => HealthState::Critical,
            _ => HealthState::Failed,
        }
    }

    /// Short lowercase label (`healthy`, `degraded`, …).
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
            HealthState::Failed => "failed",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Retry/backoff policy for transient errors and escalation thresholds
/// for the slow-burn failure modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Consecutive transient failures tolerated per disk before the disk
    /// is declared dead (each failure is followed by one retry).
    pub max_retries: u32,
    /// Backoff before the first retry, in (virtual) milliseconds.
    pub base_backoff_ms: f64,
    /// Multiplier applied per successive retry (exponential backoff).
    pub backoff_multiplier: f64,
    /// Latent-sector repairs tolerated per disk before the disk is
    /// declared dying and failed proactively.
    pub max_latent_repairs: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 1.0,
            backoff_multiplier: 2.0,
            max_latent_repairs: 8,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based), in milliseconds.
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        self.base_backoff_ms * self.backoff_multiplier.powi(attempt.saturating_sub(1) as i32)
    }
}

/// What the volume should do about one classified error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryAction {
    /// Wait `backoff_ms` (virtually) and retry the same operation.
    Retry {
        /// Backoff charged to the operation, in milliseconds.
        backoff_ms: f64,
    },
    /// Reconstruct element `(disk, index)` from its parity chains and
    /// rewrite it in place, then retry the operation.
    RepairLatent {
        /// Disk with the bad sector.
        disk: usize,
        /// The unreadable element.
        index: usize,
    },
    /// Declare `disk` dead and re-plan degraded.
    FailDisk {
        /// The disk to fail.
        disk: usize,
    },
    /// Not recoverable at this level: propagate the error.
    Fatal,
}

/// Per-volume health bookkeeping: classifies errors into
/// [`RecoveryAction`]s, tracks per-disk transient streaks and latent-repair
/// counts against the [`RetryPolicy`], and logs every state transition.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    state: HealthState,
    policy: RetryPolicy,
    /// Per-disk consecutive transient failures (cleared on success).
    transient_streak: BTreeMap<usize, u32>,
    /// Per-disk lifetime latent-sector repairs (cleared on replace).
    latent_repairs: BTreeMap<usize, u32>,
    retries_total: u64,
    latent_repairs_total: u64,
    backoff_ms_total: f64,
    transitions: Vec<(HealthState, HealthState)>,
}

impl HealthMonitor {
    /// A healthy monitor with the given policy.
    pub fn new(policy: RetryPolicy) -> Self {
        HealthMonitor {
            state: HealthState::Healthy,
            policy,
            transient_streak: BTreeMap::new(),
            latent_repairs: BTreeMap::new(),
            retries_total: 0,
            latent_repairs_total: 0,
            backoff_ms_total: 0.0,
            transitions: Vec::new(),
        }
    }

    /// Current array state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Classifies `e` into the action the volume should take.
    pub fn on_error(&mut self, e: &DiskError) -> RecoveryAction {
        match (e.class(), *e) {
            (ErrorClass::Transient, DiskError::Transient { disk }) => {
                let streak = self.transient_streak.entry(disk).or_insert(0);
                *streak += 1;
                if *streak > self.policy.max_retries {
                    // The "transient" condition is not clearing: treat the
                    // disk as dead rather than retrying forever.
                    RecoveryAction::FailDisk { disk }
                } else {
                    let backoff = self.policy.backoff_ms(*streak);
                    self.retries_total += 1;
                    self.backoff_ms_total += backoff;
                    RecoveryAction::Retry { backoff_ms: backoff }
                }
            }
            (ErrorClass::LatentSector, DiskError::LatentSector { disk, index }) => {
                let n = self.latent_repairs.entry(disk).or_insert(0);
                *n += 1;
                if *n > self.policy.max_latent_repairs {
                    // Too many grown defects: fail the disk proactively
                    // before it eats something unrecoverable.
                    RecoveryAction::FailDisk { disk }
                } else {
                    self.latent_repairs_total += 1;
                    RecoveryAction::RepairLatent { disk, index }
                }
            }
            (ErrorClass::DiskDead, DiskError::DiskFailed { disk }) => {
                RecoveryAction::FailDisk { disk }
            }
            _ => RecoveryAction::Fatal,
        }
    }

    /// An operation on `disk` succeeded: its transient streak resets.
    pub fn note_disk_ok(&mut self, disk: usize) {
        self.transient_streak.remove(&disk);
    }

    /// A whole volume operation completed: every transient streak resets
    /// (the conditions evidently cleared).
    pub fn note_op_ok(&mut self) {
        self.transient_streak.clear();
    }

    /// `disk` was physically replaced: its slow-burn counters reset.
    pub fn note_replaced(&mut self, disk: usize) {
        self.transient_streak.remove(&disk);
        self.latent_repairs.remove(&disk);
    }

    /// Re-derives the state from the failed-disk count; returns the
    /// `(from, to)` transition if the state changed.
    pub fn observe_failed_count(&mut self, failed: usize) -> Option<(HealthState, HealthState)> {
        let next = HealthState::from_failed_count(failed);
        if next == self.state {
            return None;
        }
        let from = self.state;
        self.state = next;
        self.transitions.push((from, next));
        Some((from, next))
    }

    /// Every `(from, to)` transition observed so far, in order.
    pub fn transitions(&self) -> &[(HealthState, HealthState)] {
        &self.transitions
    }

    /// Total transient retries granted.
    pub fn retries_total(&self) -> u64 {
        self.retries_total
    }

    /// Total latent-sector repairs granted.
    pub fn latent_repairs_total(&self) -> u64 {
        self.latent_repairs_total
    }

    /// Total virtual backoff accumulated, in milliseconds.
    pub fn backoff_ms_total(&self) -> f64 {
        self.backoff_ms_total
    }

    /// Latent repairs charged against `disk` so far.
    pub fn latent_repairs_on(&self, disk: usize) -> u32 {
        self.latent_repairs.get(&disk).copied().unwrap_or(0)
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        HealthMonitor::new(RetryPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_follows_failed_count() {
        assert_eq!(HealthState::from_failed_count(0), HealthState::Healthy);
        assert_eq!(HealthState::from_failed_count(1), HealthState::Degraded);
        assert_eq!(HealthState::from_failed_count(2), HealthState::Critical);
        assert_eq!(HealthState::from_failed_count(3), HealthState::Failed);
        assert!(HealthState::Healthy < HealthState::Failed);
    }

    #[test]
    fn transient_retries_then_escalates() {
        let mut m = HealthMonitor::new(RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 1.0,
            backoff_multiplier: 2.0,
            max_latent_repairs: 8,
        });
        let e = DiskError::Transient { disk: 3 };
        assert_eq!(m.on_error(&e), RecoveryAction::Retry { backoff_ms: 1.0 });
        assert_eq!(m.on_error(&e), RecoveryAction::Retry { backoff_ms: 2.0 });
        assert_eq!(m.on_error(&e), RecoveryAction::FailDisk { disk: 3 });
        assert_eq!(m.retries_total(), 2);
        assert!((m.backoff_ms_total() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut m = HealthMonitor::new(RetryPolicy { max_retries: 1, ..Default::default() });
        let e = DiskError::Transient { disk: 0 };
        assert!(matches!(m.on_error(&e), RecoveryAction::Retry { .. }));
        m.note_disk_ok(0);
        assert!(matches!(m.on_error(&e), RecoveryAction::Retry { .. }));
    }

    #[test]
    fn latent_repairs_then_escalates() {
        let mut m = HealthMonitor::new(RetryPolicy {
            max_latent_repairs: 2,
            ..Default::default()
        });
        for index in 0..2 {
            assert_eq!(
                m.on_error(&DiskError::LatentSector { disk: 1, index }),
                RecoveryAction::RepairLatent { disk: 1, index }
            );
        }
        assert_eq!(
            m.on_error(&DiskError::LatentSector { disk: 1, index: 9 }),
            RecoveryAction::FailDisk { disk: 1 }
        );
        assert_eq!(m.latent_repairs_total(), 2);
        // A different disk has its own budget.
        assert!(matches!(
            m.on_error(&DiskError::LatentSector { disk: 2, index: 0 }),
            RecoveryAction::RepairLatent { .. }
        ));
    }

    #[test]
    fn dead_and_fatal_classes() {
        let mut m = HealthMonitor::default();
        assert_eq!(
            m.on_error(&DiskError::DiskFailed { disk: 4 }),
            RecoveryAction::FailDisk { disk: 4 }
        );
        assert_eq!(m.on_error(&DiskError::Crashed), RecoveryAction::Fatal);
        assert_eq!(m.on_error(&DiskError::Io { disk: 0 }), RecoveryAction::Fatal);
        assert_eq!(m.on_error(&DiskError::NoSuchDisk { disk: 9 }), RecoveryAction::Fatal);
    }

    #[test]
    fn transitions_are_logged_once_per_change() {
        let mut m = HealthMonitor::default();
        assert_eq!(m.observe_failed_count(0), None);
        assert_eq!(
            m.observe_failed_count(1),
            Some((HealthState::Healthy, HealthState::Degraded))
        );
        assert_eq!(m.observe_failed_count(1), None);
        assert_eq!(
            m.observe_failed_count(2),
            Some((HealthState::Degraded, HealthState::Critical))
        );
        assert_eq!(
            m.observe_failed_count(0),
            Some((HealthState::Critical, HealthState::Healthy))
        );
        assert_eq!(m.transitions().len(), 3);
    }
}
