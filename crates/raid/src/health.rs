//! Volume health: failure state machine and retry/backoff policy.
//!
//! The paper's reliability argument (Section V-D, Fig. 9) is about how
//! long an array spends exposed — degraded or critical — before repair
//! completes. This module gives the runtime the bookkeeping side of that
//! story: a [`HealthState`] machine
//! (`Healthy → Degraded(1) → Critical(2) → Failed`) driven by the failed
//! -disk count, and a [`HealthMonitor`] that classifies every
//! [`DiskError`] through the [`ErrorClass`] taxonomy into one
//! [`RecoveryAction`]:
//!
//! * **transient** errors are retried with exponential backoff (virtual —
//!   accumulated milliseconds, no sleeping), escalating to disk-dead when
//!   a disk's consecutive-failure streak exhausts the policy;
//! * **latent sectors** are repaired in place (reconstruct from the parity
//!   chains, rewrite), escalating to disk-dead once a disk accumulates too
//!   many of them — the classic "reallocated sector count" SMART trip;
//! * **disk-dead** errors degrade the array immediately;
//! * **crashes** and programming errors are fatal to the operation.
//!
//! The monitor is pure bookkeeping — it never touches a backend — so the
//! policy is unit-testable without I/O; [`crate::volume::RaidVolume`]
//! executes the actions it returns.

use std::collections::BTreeMap;

use disk_sim::{DiskError, ErrorClass};

/// Array-level health, a function of how many disks hold invalid data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// All disks valid.
    Healthy,
    /// One disk invalid: every chain still decodable, no slack.
    Degraded,
    /// Two disks invalid: at the RAID-6 correction limit.
    Critical,
    /// More than two disks invalid: data loss.
    Failed,
}

impl HealthState {
    /// The state implied by `failed` invalid disks.
    pub fn from_failed_count(failed: usize) -> Self {
        match failed {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            2 => HealthState::Critical,
            _ => HealthState::Failed,
        }
    }

    /// Short lowercase label (`healthy`, `degraded`, …).
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
            HealthState::Failed => "failed",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Retry/backoff policy for transient errors and escalation thresholds
/// for the slow-burn failure modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Consecutive transient failures tolerated per disk before the disk
    /// is declared dead (each failure is followed by one retry).
    pub max_retries: u32,
    /// Backoff before the first retry, in (virtual) milliseconds.
    pub base_backoff_ms: f64,
    /// Multiplier applied per successive retry (exponential backoff).
    pub backoff_multiplier: f64,
    /// Ceiling on any single backoff, in milliseconds. Exponential growth
    /// saturates here instead of running to infinity (a caller holding a
    /// large attempt counter — the volume's op-retry loop allows 64 —
    /// must not charge an unbounded or non-finite wait).
    pub max_backoff_ms: f64,
    /// Latent-sector repairs tolerated per disk before the disk is
    /// declared dying and failed proactively.
    pub max_latent_repairs: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 1.0,
            backoff_multiplier: 2.0,
            max_backoff_ms: 1_000.0,
            max_latent_repairs: 8,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based), in milliseconds,
    /// capped at [`RetryPolicy::max_backoff_ms`].
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        // Clamp the exponent before the i32 cast (u32::MAX would wrap
        // negative and yield a zero backoff); `powi` overflowing to +inf
        // for large attempts is collapsed by the `min` against the cap.
        let exp = attempt.saturating_sub(1).min(i32::MAX as u32) as i32;
        let raw = self.base_backoff_ms * self.backoff_multiplier.powi(exp);
        raw.min(self.max_backoff_ms)
    }
}

/// What the volume should do about one classified error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryAction {
    /// Wait `backoff_ms` (virtually) and retry the same operation.
    Retry {
        /// Backoff charged to the operation, in milliseconds.
        backoff_ms: f64,
    },
    /// Reconstruct element `(disk, index)` from its parity chains and
    /// rewrite it in place, then retry the operation.
    RepairLatent {
        /// Disk with the bad sector.
        disk: usize,
        /// The unreadable element.
        index: usize,
    },
    /// Declare `disk` dead and re-plan degraded.
    FailDisk {
        /// The disk to fail.
        disk: usize,
    },
    /// Not recoverable at this level: propagate the error.
    Fatal,
    /// Re-pace background rebuild I/O to `rate` stripes per scheduling
    /// tick. Emitted by the [`RebuildThrottle`] controller (not by
    /// [`HealthMonitor::on_error`]): rebuild arbitration is driven by
    /// foreground latency, not by a disk error.
    Throttle {
        /// Granted rebuild rate, in stripes per tick.
        rate: f64,
    },
}

/// Tuning for the adaptive rebuild throttle (AIMD, token-bucket style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleConfig {
    /// Floor on the granted rate — rebuild always makes progress.
    pub min_rate: f64,
    /// Ceiling on the granted rate (the burst size of the bucket).
    pub max_rate: f64,
    /// Foreground p99 above `degrade_threshold × baseline` counts as a
    /// QoS violation and triggers multiplicative backoff.
    pub degrade_threshold: f64,
    /// Multiplicative decrease applied on a QoS violation (0 < f < 1).
    pub backoff_factor: f64,
    /// Additive increase per calm tick, in stripes per tick.
    pub step_up: f64,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig {
            min_rate: 1.0,
            max_rate: 8.0,
            degrade_threshold: 1.5,
            backoff_factor: 0.5,
            step_up: 1.0,
        }
    }
}

/// Adaptive rebuild-rate controller: arbitrates background rebuild I/O
/// against foreground traffic.
///
/// Classic AIMD over a token bucket: each tick the caller reports the
/// foreground p99 it observed; the controller backs the rebuild rate off
/// multiplicatively when foreground latency degrades past the threshold,
/// creeps it up additively while foreground is comfortable, and jumps to
/// the ceiling when foreground is idle. Rate is denominated in stripes
/// per tick; [`RebuildThrottle::take_budget`] converts the (fractional)
/// rate into a whole-stripe budget, banking the remainder so e.g. rate
/// 0.5 rebuilds one stripe every other tick rather than never.
#[derive(Debug, Clone)]
pub struct RebuildThrottle {
    cfg: ThrottleConfig,
    rate: f64,
    tokens: f64,
    backoffs: u64,
}

impl RebuildThrottle {
    /// A throttle starting at the configured ceiling (optimistic: back
    /// off only once foreground traffic demonstrably suffers).
    pub fn new(cfg: ThrottleConfig) -> Self {
        RebuildThrottle { cfg, rate: cfg.max_rate, tokens: 0.0, backoffs: 0 }
    }

    /// Current granted rate, in stripes per tick.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Multiplicative-backoff events so far.
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }

    /// Feeds one tick of foreground observation (`None` = foreground
    /// idle) and returns the re-paced rate as a
    /// [`RecoveryAction::Throttle`].
    pub fn observe(&mut self, fg_p99_ms: Option<f64>, baseline_p99_ms: f64) -> RecoveryAction {
        match fg_p99_ms {
            // Idle foreground: rebuild at full tilt.
            None => self.rate = self.cfg.max_rate,
            Some(p99) if p99 > self.cfg.degrade_threshold * baseline_p99_ms => {
                self.rate = (self.rate * self.cfg.backoff_factor).max(self.cfg.min_rate);
                self.backoffs += 1;
            }
            Some(_) => self.rate = (self.rate + self.cfg.step_up).min(self.cfg.max_rate),
        }
        RecoveryAction::Throttle { rate: self.rate }
    }

    /// Converts the current rate into a whole-stripe budget for this
    /// tick, banking any fractional remainder for later ticks.
    pub fn take_budget(&mut self) -> usize {
        self.tokens += self.rate;
        let grant = self.tokens.floor();
        self.tokens -= grant;
        grant as usize
    }
}

/// Per-volume health bookkeeping: classifies errors into
/// [`RecoveryAction`]s, tracks per-disk transient streaks and latent-repair
/// counts against the [`RetryPolicy`], and logs every state transition.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    state: HealthState,
    policy: RetryPolicy,
    /// Per-disk consecutive transient failures (cleared on success).
    transient_streak: BTreeMap<usize, u32>,
    /// Per-disk lifetime latent-sector repairs (cleared on replace).
    latent_repairs: BTreeMap<usize, u32>,
    retries_total: u64,
    latent_repairs_total: u64,
    backoff_ms_total: f64,
    transitions: Vec<(HealthState, HealthState)>,
}

impl HealthMonitor {
    /// A healthy monitor with the given policy.
    pub fn new(policy: RetryPolicy) -> Self {
        HealthMonitor {
            state: HealthState::Healthy,
            policy,
            transient_streak: BTreeMap::new(),
            latent_repairs: BTreeMap::new(),
            retries_total: 0,
            latent_repairs_total: 0,
            backoff_ms_total: 0.0,
            transitions: Vec::new(),
        }
    }

    /// Current array state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Classifies `e` into the action the volume should take.
    pub fn on_error(&mut self, e: &DiskError) -> RecoveryAction {
        match (e.class(), *e) {
            (ErrorClass::Transient, DiskError::Transient { disk }) => {
                let streak = self.transient_streak.entry(disk).or_insert(0);
                *streak += 1;
                if *streak > self.policy.max_retries {
                    // The "transient" condition is not clearing: treat the
                    // disk as dead rather than retrying forever.
                    RecoveryAction::FailDisk { disk }
                } else {
                    let backoff = self.policy.backoff_ms(*streak);
                    self.retries_total += 1;
                    self.backoff_ms_total += backoff;
                    RecoveryAction::Retry { backoff_ms: backoff }
                }
            }
            (ErrorClass::LatentSector, DiskError::LatentSector { disk, index }) => {
                let n = self.latent_repairs.entry(disk).or_insert(0);
                *n += 1;
                if *n > self.policy.max_latent_repairs {
                    // Too many grown defects: fail the disk proactively
                    // before it eats something unrecoverable.
                    RecoveryAction::FailDisk { disk }
                } else {
                    self.latent_repairs_total += 1;
                    RecoveryAction::RepairLatent { disk, index }
                }
            }
            (ErrorClass::DiskDead, DiskError::DiskFailed { disk }) => {
                RecoveryAction::FailDisk { disk }
            }
            _ => RecoveryAction::Fatal,
        }
    }

    /// An operation on `disk` succeeded: its transient streak resets.
    pub fn note_disk_ok(&mut self, disk: usize) {
        self.transient_streak.remove(&disk);
    }

    /// A whole volume operation completed: every transient streak resets
    /// (the conditions evidently cleared).
    pub fn note_op_ok(&mut self) {
        self.transient_streak.clear();
    }

    /// `disk` was physically replaced: its slow-burn counters reset.
    pub fn note_replaced(&mut self, disk: usize) {
        self.transient_streak.remove(&disk);
        self.latent_repairs.remove(&disk);
    }

    /// Re-derives the state from the failed-disk count; returns the
    /// `(from, to)` transition if the state changed.
    pub fn observe_failed_count(&mut self, failed: usize) -> Option<(HealthState, HealthState)> {
        let next = HealthState::from_failed_count(failed);
        if next == self.state {
            return None;
        }
        let from = self.state;
        self.state = next;
        self.transitions.push((from, next));
        Some((from, next))
    }

    /// Every `(from, to)` transition observed so far, in order.
    pub fn transitions(&self) -> &[(HealthState, HealthState)] {
        &self.transitions
    }

    /// Total transient retries granted.
    pub fn retries_total(&self) -> u64 {
        self.retries_total
    }

    /// Total latent-sector repairs granted.
    pub fn latent_repairs_total(&self) -> u64 {
        self.latent_repairs_total
    }

    /// Total virtual backoff accumulated, in milliseconds.
    pub fn backoff_ms_total(&self) -> f64 {
        self.backoff_ms_total
    }

    /// Latent repairs charged against `disk` so far.
    pub fn latent_repairs_on(&self, disk: usize) -> u32 {
        self.latent_repairs.get(&disk).copied().unwrap_or(0)
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        HealthMonitor::new(RetryPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_follows_failed_count() {
        assert_eq!(HealthState::from_failed_count(0), HealthState::Healthy);
        assert_eq!(HealthState::from_failed_count(1), HealthState::Degraded);
        assert_eq!(HealthState::from_failed_count(2), HealthState::Critical);
        assert_eq!(HealthState::from_failed_count(3), HealthState::Failed);
        assert!(HealthState::Healthy < HealthState::Failed);
    }

    #[test]
    fn transient_retries_then_escalates() {
        let mut m = HealthMonitor::new(RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 1.0,
            backoff_multiplier: 2.0,
            max_backoff_ms: 1_000.0,
            max_latent_repairs: 8,
        });
        let e = DiskError::Transient { disk: 3 };
        assert_eq!(m.on_error(&e), RecoveryAction::Retry { backoff_ms: 1.0 });
        assert_eq!(m.on_error(&e), RecoveryAction::Retry { backoff_ms: 2.0 });
        assert_eq!(m.on_error(&e), RecoveryAction::FailDisk { disk: 3 });
        assert_eq!(m.retries_total(), 2);
        assert!((m.backoff_ms_total() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn backoff_saturates_at_the_ceiling() {
        let p = RetryPolicy::default();
        // Regression: the volume's op-retry loop allows 64 attempts;
        // 2^63 ms used to come back as ~9.2e18 and larger attempts as
        // +inf. Every attempt must now yield a finite, capped wait.
        let b64 = p.backoff_ms(64);
        assert!(b64.is_finite());
        assert!((b64 - p.max_backoff_ms).abs() < 1e-12);
        assert_eq!(p.backoff_ms(u32::MAX), p.max_backoff_ms);
        // Below the cap the exponential schedule is untouched.
        assert!((p.backoff_ms(3) - 4.0).abs() < 1e-12);
        // Monotone non-decreasing across the knee.
        let mut prev = 0.0;
        for attempt in 1..=128 {
            let b = p.backoff_ms(attempt);
            assert!(b.is_finite() && b >= prev);
            prev = b;
        }
    }

    #[test]
    fn throttle_backs_off_and_recovers() {
        let cfg = ThrottleConfig::default();
        let mut t = RebuildThrottle::new(cfg);
        assert!((t.rate() - cfg.max_rate).abs() < 1e-12);
        // Degraded foreground: multiplicative decrease down to the floor.
        assert_eq!(t.observe(Some(200.0), 100.0), RecoveryAction::Throttle { rate: 4.0 });
        assert_eq!(t.observe(Some(200.0), 100.0), RecoveryAction::Throttle { rate: 2.0 });
        assert_eq!(t.observe(Some(200.0), 100.0), RecoveryAction::Throttle { rate: 1.0 });
        assert_eq!(t.observe(Some(200.0), 100.0), RecoveryAction::Throttle { rate: 1.0 });
        assert_eq!(t.backoffs(), 4);
        // Comfortable foreground: additive increase.
        assert_eq!(t.observe(Some(120.0), 100.0), RecoveryAction::Throttle { rate: 2.0 });
        assert_eq!(t.observe(Some(120.0), 100.0), RecoveryAction::Throttle { rate: 3.0 });
        // Idle foreground: straight to the ceiling.
        assert_eq!(t.observe(None, 100.0), RecoveryAction::Throttle { rate: 8.0 });
    }

    #[test]
    fn throttle_budget_banks_fractional_tokens() {
        let mut t = RebuildThrottle::new(ThrottleConfig {
            min_rate: 0.5,
            max_rate: 0.5,
            ..ThrottleConfig::default()
        });
        // Rate 0.5 stripes/tick: one stripe every other tick, never zero
        // forever and never rounding up to one per tick.
        let grants: Vec<usize> = (0..6).map(|_| t.take_budget()).collect();
        assert_eq!(grants, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut m = HealthMonitor::new(RetryPolicy { max_retries: 1, ..Default::default() });
        let e = DiskError::Transient { disk: 0 };
        assert!(matches!(m.on_error(&e), RecoveryAction::Retry { .. }));
        m.note_disk_ok(0);
        assert!(matches!(m.on_error(&e), RecoveryAction::Retry { .. }));
    }

    #[test]
    fn latent_repairs_then_escalates() {
        let mut m = HealthMonitor::new(RetryPolicy {
            max_latent_repairs: 2,
            ..Default::default()
        });
        for index in 0..2 {
            assert_eq!(
                m.on_error(&DiskError::LatentSector { disk: 1, index }),
                RecoveryAction::RepairLatent { disk: 1, index }
            );
        }
        assert_eq!(
            m.on_error(&DiskError::LatentSector { disk: 1, index: 9 }),
            RecoveryAction::FailDisk { disk: 1 }
        );
        assert_eq!(m.latent_repairs_total(), 2);
        // A different disk has its own budget.
        assert!(matches!(
            m.on_error(&DiskError::LatentSector { disk: 2, index: 0 }),
            RecoveryAction::RepairLatent { .. }
        ));
    }

    #[test]
    fn dead_and_fatal_classes() {
        let mut m = HealthMonitor::default();
        assert_eq!(
            m.on_error(&DiskError::DiskFailed { disk: 4 }),
            RecoveryAction::FailDisk { disk: 4 }
        );
        assert_eq!(m.on_error(&DiskError::Crashed), RecoveryAction::Fatal);
        assert_eq!(m.on_error(&DiskError::Io { disk: 0 }), RecoveryAction::Fatal);
        assert_eq!(m.on_error(&DiskError::NoSuchDisk { disk: 9 }), RecoveryAction::Fatal);
    }

    #[test]
    fn transitions_are_logged_once_per_change() {
        let mut m = HealthMonitor::default();
        assert_eq!(m.observe_failed_count(0), None);
        assert_eq!(
            m.observe_failed_count(1),
            Some((HealthState::Healthy, HealthState::Degraded))
        );
        assert_eq!(m.observe_failed_count(1), None);
        assert_eq!(
            m.observe_failed_count(2),
            Some((HealthState::Degraded, HealthState::Critical))
        );
        assert_eq!(
            m.observe_failed_count(0),
            Some((HealthState::Critical, HealthState::Healthy))
        );
        assert_eq!(m.transitions().len(), 3);
    }
}
