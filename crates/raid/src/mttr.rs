//! Rebuild-time estimation: how long until a degraded array is healthy
//! again — the volume-scale operationalization of the paper's Fig. 9.
//!
//! Reliability modeling treats the mean time to repair (MTTR) as the window
//! during which a second (or third, fatal) failure can strike, so a code
//! that shortens rebuilds — fewer elements read per lost element (Fig. 9a),
//! more parallel recovery chains (Fig. 9b) — directly improves the array's
//! mean time to data loss.

use disk_sim::{DiskArray, DiskProfile};
use raid_core::plan::single::{plan_single_disk_recovery, SearchStrategy};
use raid_core::schedule::double_failure_schedule;
use raid_core::ArrayCode;

/// Estimated rebuild times for a volume shape, in simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildEstimate {
    /// Rebuilding one failed disk: minimum-I/O hybrid recovery, reads
    /// spread over the surviving disks, writes streamed to the spare.
    pub single_ms: f64,
    /// Rebuilding two failed disks: all surviving elements are read in
    /// parallel, then the recovery chains execute (`Lc · Re` on top of the
    /// read phase, as in the paper's Section V-D).
    pub double_ms: f64,
}

/// Estimates rebuild times for `stripes` stripes of `code` on arrays with
/// the given disk profile.
///
/// The single-failure estimate simulates the read phase per stripe (each
/// surviving disk serves its share of the minimum-I/O plan, the spare
/// absorbs the writes); the double-failure estimate uses the full-scan read
/// phase plus the expected longest-recovery-chain XOR/write phase.
///
/// # Panics
///
/// Panics if `stripes` is zero.
pub fn estimate_rebuild(
    code: &dyn ArrayCode,
    stripes: usize,
    profile: DiskProfile,
) -> RebuildEstimate {
    assert!(stripes > 0, "need at least one stripe");
    let layout = code.layout();
    let disks = layout.cols();

    // --- Single failure: average over which disk failed. ---
    let mut single_total = 0.0;
    for failed in 0..disks {
        let plan = plan_single_disk_recovery(layout, failed, SearchStrategy::Greedy);
        // Reads per stripe, spread over surviving disks + writes to spare.
        let mut sim = DiskArray::new(disks + 1, profile); // +1 = the spare
        let spare = disks;
        let mut batch: Vec<usize> = Vec::new();
        for cell in &plan.reads {
            batch.push(cell.col);
        }
        for _ in 0..layout.rows() {
            batch.push(spare);
        }
        // One stripe's makespan, then scale: stripes pipeline perfectly on
        // independent queues, so total ≈ per-stripe service × stripes on
        // the bottleneck disk.
        let per_stripe = sim.run_batch(batch).expect("healthy sim");
        single_total += per_stripe * stripes as f64;
    }
    let single_ms = single_total / disks as f64;

    // --- Double failure: expectation over all pairs. ---
    let re = profile.element_service_ms();
    let surviving = disks - 2;
    let mut double_total = 0.0;
    let mut pairs = 0usize;
    for f1 in 0..disks {
        for f2 in (f1 + 1)..disks {
            let sched = double_failure_schedule(layout, f1, f2)
                .expect("RAID-6 repairs any pair");
            // Read phase: every surviving element once, in parallel.
            let read_phase = layout.rows() as f64 * stripes as f64 * re;
            // Chain phase: Lc elements recovered serially per stripe.
            let chain_phase = sched.longest_chain as f64 * stripes as f64 * re
                / (surviving as f64).max(1.0);
            double_total += read_phase + chain_phase;
            pairs += 1;
        }
    }
    let double_ms = double_total / pairs as f64;

    RebuildEstimate { single_ms, double_ms }
}

/// Estimates rebuild times with the rebuild I/O paced at `rate` (a
/// fraction of full tilt in `(0, 1]`): the throttled array moves the same
/// elements through the same bottleneck disks, just slower, so both times
/// scale by `1 / rate`. This is the closed-form input a QoS-aware
/// controller (see `RebuildThrottle`) trades against — rebuilding at a
/// quarter rate quarters foreground interference but quadruples the
/// exposure window.
///
/// # Panics
///
/// Panics if `rate` is not in `(0, 1]` or `stripes` is zero.
pub fn estimate_rebuild_throttled(
    code: &dyn ArrayCode,
    stripes: usize,
    profile: DiskProfile,
    rate: f64,
) -> RebuildEstimate {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
    let full = estimate_rebuild(code, stripes, profile);
    RebuildEstimate { single_ms: full.single_ms / rate, double_ms: full.double_ms / rate }
}

/// Converts a *measured* rebuild's ledger into modeled disk time: the
/// bottleneck disk's element count × the profile's per-element service
/// time. `per_disk_elements` is the rebuild's per-disk I/O (reads +
/// writes, e.g. an [`raid_core::io::IoLedger`]'s per-disk totals summed
/// over the rebuild's steps); because elements ahead of the rebuild
/// frontier are the only ones the ledger ever records, the figure is
/// frontier-aware by construction — a rebuild resumed from a checkpoint
/// charges only the stripes it actually moved.
///
/// Returns 0 for an empty ledger (nothing was rebuilt).
pub fn measured_rebuild_ms(per_disk_elements: &[u64], profile: DiskProfile) -> f64 {
    let bottleneck = per_disk_elements.iter().copied().max().unwrap_or(0);
    bottleneck as f64 * profile.element_service_ms()
}

/// Event-accurate single-disk rebuild simulation: every stripe's
/// minimum-I/O read batch and spare-disk writes flow through a
/// [`DiskArray`] stripe by stripe, so queueing between consecutive stripes
/// is modeled rather than approximated. Returns `(total_ms, per-disk
/// utilization)`.
///
/// This is the reference the closed-form [`estimate_rebuild`] is validated
/// against (they agree because per-stripe batches hit the same bottleneck
/// disk each time; the test below pins that agreement).
///
/// # Panics
///
/// Panics if `stripes` is zero or `failed` out of range.
pub fn simulate_single_rebuild(
    code: &dyn ArrayCode,
    stripes: usize,
    failed: usize,
    profile: DiskProfile,
) -> (f64, Vec<f64>) {
    assert!(stripes > 0, "need at least one stripe");
    let layout = code.layout();
    assert!(failed < layout.cols(), "failed disk out of range");
    let plan = plan_single_disk_recovery(layout, failed, SearchStrategy::Greedy);
    let spare = layout.cols();
    let mut sim = DiskArray::new(layout.cols() + 1, profile);
    for _ in 0..stripes {
        let mut batch: Vec<usize> = plan.reads.iter().map(|c| c.col).collect();
        batch.extend(std::iter::repeat_n(spare, layout.rows()));
        sim.run_batch(batch).expect("healthy sim");
    }
    (sim.now_ms(), sim.utilization())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_code::HvCode;
    use raid_baselines::{HCode, HdpCode};

    #[test]
    fn hv_rebuilds_faster_than_hcode() {
        let profile = DiskProfile::savvio_10k();
        let hv = estimate_rebuild(&HvCode::new(13).unwrap(), 16, profile);
        let h = estimate_rebuild(&HCode::new(13).unwrap(), 16, profile);
        // Fig. 9a: HV reads fewer elements per lost element; with the same
        // element service time that translates to a faster single rebuild
        // per disk (H-Code also has more disks sharing reads, so compare
        // per-bottleneck: HV must not be slower by more than the disk-count
        // ratio).
        assert!(
            hv.single_ms <= h.single_ms * 1.2,
            "HV {:.0}ms vs H-Code {:.0}ms",
            hv.single_ms,
            h.single_ms
        );
        assert!(hv.double_ms < h.double_ms, "Fig. 9b ordering must hold");
    }

    #[test]
    fn hv_beats_hdp_on_double_failures() {
        let profile = DiskProfile::savvio_10k();
        let hv = estimate_rebuild(&HvCode::new(13).unwrap(), 8, profile);
        let hdp = estimate_rebuild(&HdpCode::new(13).unwrap(), 8, profile);
        assert!(hv.double_ms < hdp.double_ms);
    }

    #[test]
    fn scales_linearly_with_stripes() {
        let profile = DiskProfile::savvio_10k();
        let one = estimate_rebuild(&HvCode::new(7).unwrap(), 1, profile);
        let ten = estimate_rebuild(&HvCode::new(7).unwrap(), 10, profile);
        assert!((ten.single_ms / one.single_ms - 10.0).abs() < 1e-6);
        assert!((ten.double_ms / one.double_ms - 10.0).abs() < 1e-6);
    }

    #[test]
    fn throttled_estimate_scales_inversely_with_rate() {
        let profile = DiskProfile::savvio_10k();
        let code = HvCode::new(7).unwrap();
        let full = estimate_rebuild(&code, 8, profile);
        let half = estimate_rebuild_throttled(&code, 8, profile, 0.5);
        let quarter = estimate_rebuild_throttled(&code, 8, profile, 0.25);
        assert!((half.single_ms - 2.0 * full.single_ms).abs() < 1e-9);
        assert!((quarter.double_ms - 4.0 * full.double_ms).abs() < 1e-9);
        // rate = 1 is exactly the unthrottled estimate.
        assert_eq!(estimate_rebuild_throttled(&code, 8, profile, 1.0), full);
    }

    #[test]
    #[should_panic(expected = "rate must be in (0, 1]")]
    fn throttled_estimate_rejects_zero_rate() {
        estimate_rebuild_throttled(&HvCode::new(7).unwrap(), 8, DiskProfile::savvio_10k(), 0.0);
    }

    #[test]
    fn measured_rebuild_charges_the_bottleneck_disk() {
        let profile = DiskProfile::savvio_10k();
        let re = profile.element_service_ms();
        assert_eq!(measured_rebuild_ms(&[], profile), 0.0);
        assert_eq!(measured_rebuild_ms(&[0, 0, 0], profile), 0.0);
        let ms = measured_rebuild_ms(&[12, 40, 7, 40], profile);
        assert!((ms - 40.0 * re).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_rejected() {
        estimate_rebuild(&HvCode::new(7).unwrap(), 0, DiskProfile::savvio_10k());
    }

    #[test]
    fn simulation_agrees_with_closed_form_per_disk() {
        let profile = DiskProfile::savvio_10k();
        let code = HvCode::new(7).unwrap();
        // Closed form averages over failed disks; compare disk by disk.
        for failed in 0..6 {
            let (sim_ms, util) = simulate_single_rebuild(&code, 10, failed, profile);
            assert!(sim_ms > 0.0);
            // The spare disk writes one element per row per stripe; it can
            // never be idle through a rebuild.
            assert!(util[6] > 0.3, "spare idle: {util:?}");
            // Bottleneck utilization is 1.0 by construction.
            let max = util.iter().cloned().fold(0.0, f64::max);
            assert!((max - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn simulated_rebuild_is_faster_for_hv_than_hcode_per_spindle() {
        // HV reads fewer elements per lost element (Fig. 9a), so the
        // per-stripe bottleneck batch is lighter.
        let profile = DiskProfile::savvio_10k();
        let hv: f64 = (0..6)
            .map(|f| simulate_single_rebuild(&HvCode::new(7).unwrap(), 8, f, profile).0)
            .sum::<f64>()
            / 6.0;
        let hc: f64 = (0..8)
            .map(|f| simulate_single_rebuild(&HCode::new(7).unwrap(), 8, f, profile).0)
            .sum::<f64>()
            / 8.0;
        assert!(hv <= hc * 1.15, "HV {hv:.0}ms vs H-Code {hc:.0}ms");
    }
}
