//! The single I/O pipeline every volume operation lowers into.
//!
//! A [`LoweredOp`] is the normal form of one volume operation against one
//! stripe: element **reads** (backend → scratch cells), a compiled
//! [`XorPlan`] over the scratch, and element **writes** (scratch cells →
//! backend, split data/parity). [`IoPipeline::execute`] runs that form
//! against the [`DiskBackend`], hands the very same [`RequestSet`] to the
//! attached [`DiskArray`] simulator (if any) for timing, and absorbs it
//! into the [`IoLedger`] — so execution, timing, and accounting can never
//! disagree about what was issued.

use disk_sim::{DiskArray, DiskError};
use raid_core::io::{IoLedger, LedgerShard, RequestSet};
use raid_core::{Cell, Stripe, XorPlan};

use crate::backend::{DiskBackend, DiskRequest, JournalEntry};
use crate::partition::{run_partitioned, PartitionMap};

/// A flat element address on the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskAddr {
    /// Physical disk.
    pub disk: usize,
    /// Element index on that disk (`stripe · rows + row`).
    pub index: usize,
}

/// One volume operation lowered to its pipeline normal form. Cells are
/// scratch-stripe coordinates (ops over a taller-than-layout scratch, e.g.
/// the RMW double-buffer, are fine — the plan is compiled for the scratch
/// shape).
#[derive(Debug, Clone, Default)]
pub struct LoweredOp {
    /// Elements fetched from the backend into scratch cells.
    pub reads: Vec<(Cell, DiskAddr)>,
    /// XOR program over the scratch after the reads land.
    pub plan: Option<XorPlan>,
    /// Data elements stored from scratch cells.
    pub data_writes: Vec<(Cell, DiskAddr)>,
    /// Parity elements stored from scratch cells.
    pub parity_writes: Vec<(Cell, DiskAddr)>,
}

impl LoweredOp {
    /// An op that only fetches the given cells.
    pub fn read_only(reads: Vec<(Cell, DiskAddr)>) -> Self {
        LoweredOp { reads, ..Default::default() }
    }

    /// True if the op issues no element requests at all.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.data_writes.is_empty() && self.parity_writes.is_empty()
    }
}

/// Executes [`LoweredOp`]s against a backend, mirrors each request set to
/// an optional timing simulator, and keeps the cumulative [`IoLedger`].
pub struct IoPipeline {
    backend: Box<dyn DiskBackend>,
    ledger: IoLedger,
    sim: Option<DiskArray>,
    /// Simulated latency accumulated by the current operation (reset via
    /// [`IoPipeline::begin_op`]).
    op_latency_ms: f64,
    /// Recycled pre-image buffers for the crash-journal write phase. Every
    /// op used to allocate one fresh `Vec<u8>` per write target; the pool
    /// caps steady-state allocation at the largest write set seen so far.
    pre_image_pool: Vec<Vec<u8>>,
}

impl std::fmt::Debug for IoPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoPipeline")
            .field("backend", &self.backend.kind())
            .field("disks", &self.backend.disks())
            .field("sim", &self.sim.is_some())
            .finish()
    }
}

impl IoPipeline {
    /// Wraps a backend; the ledger starts at zero, no simulator attached.
    pub fn new(backend: Box<dyn DiskBackend>) -> Self {
        let disks = backend.disks();
        IoPipeline {
            backend,
            ledger: IoLedger::new(disks),
            sim: None,
            op_latency_ms: 0.0,
            pre_image_pool: Vec::new(),
        }
    }

    /// The backend (volume-internal maintenance access: unaccounted
    /// verification reads, corruption injection).
    pub fn backend_mut(&mut self) -> &mut dyn DiskBackend {
        self.backend.as_mut()
    }

    /// Immutable backend access.
    pub fn backend(&self) -> &dyn DiskBackend {
        self.backend.as_ref()
    }

    /// The cumulative ledger.
    pub fn ledger(&self) -> &IoLedger {
        &self.ledger
    }

    /// Mutable ledger access (health/retry accounting notes).
    pub fn ledger_mut(&mut self) -> &mut IoLedger {
        &mut self.ledger
    }

    /// Zeroes the ledger (between experiments).
    pub fn reset_ledger(&mut self) {
        self.ledger = IoLedger::new(self.backend.disks());
    }

    /// Attaches a timing simulator; subsequent request sets are timed.
    pub fn attach_sim(&mut self, sim: DiskArray) {
        self.sim = Some(sim);
    }

    /// Detaches and returns the simulator.
    pub fn detach_sim(&mut self) -> Option<DiskArray> {
        self.sim.take()
    }

    /// The attached simulator, if any.
    pub fn sim(&self) -> Option<&DiskArray> {
        self.sim.as_ref()
    }

    /// Mutable simulator access (failure-state sync).
    pub fn sim_mut(&mut self) -> Option<&mut DiskArray> {
        self.sim.as_mut()
    }

    /// Marks the start of a volume-level operation: the per-op latency
    /// accumulator is reset.
    pub fn begin_op(&mut self) {
        self.op_latency_ms = 0.0;
    }

    /// Simulated latency of the operation since [`IoPipeline::begin_op`]
    /// (sum of its request-set makespans; 0 without a simulator).
    pub fn op_latency_ms(&self) -> f64 {
        self.op_latency_ms
    }

    /// Executes one lowered op: fetch reads into `scratch`, run the XOR
    /// plan, store the writes, then commit the request set to the
    /// simulator and ledger. Returns the committed set.
    ///
    /// The write phase is atomic with respect to surviving disks: if a
    /// write fails mid-op, already-stored elements are restored from their
    /// pre-images before the error is returned, so the caller can re-plan
    /// (e.g. degraded) against a consistent array. The pre-images are
    /// journaled through the backend before the first write, so even a
    /// crash mid-phase is rolled back when the volume is reopened.
    ///
    /// # Errors
    ///
    /// Returns the backend's [`DiskError`]; nothing is committed to the
    /// simulator or ledger in that case.
    pub fn execute(&mut self, op: &LoweredOp, scratch: &mut Stripe) -> Result<RequestSet, DiskError> {
        // Debug builds statically audit every op before touching the
        // backend: structural defects in the IR (out-of-scratch cells,
        // duplicate reads/writes, plan/scratch shape skew) are lowering
        // bugs, and executing them would silently corrupt elements.
        #[cfg(debug_assertions)]
        if let Err(e) = crate::audit::audit_lowered(
            op,
            scratch.rows(),
            scratch.cols(),
            self.backend.disks(),
            None,
        ) {
            panic!("lowered op failed static audit: {e}");
        }

        let mut rs = RequestSet::new(self.backend.disks());

        for &(cell, addr) in &op.reads {
            self.backend.read(addr.disk, addr.index, scratch.element_mut(cell))?;
            rs.add_read(addr.disk);
        }

        if let Some(plan) = &op.plan {
            plan.execute(scratch);
        }

        // Write phase, crash-consistently: first gather every target's
        // pre-image (unaccounted internal reads), journal them durably,
        // then apply the writes. A mid-phase disk death is rolled back in
        // place from the pre-images; a crash leaves the journal behind for
        // reopen-time rollback, so the multi-element update is atomic even
        // across process death.
        let es = self.backend.element_size();
        let targets: Vec<(Cell, DiskAddr)> =
            op.data_writes.iter().chain(&op.parity_writes).copied().collect();
        let mut entries: Vec<JournalEntry> = Vec::with_capacity(targets.len());
        let write_result = (|| -> Result<(), DiskError> {
            for &(_, addr) in &targets {
                let mut pre = self.pre_image_pool.pop().unwrap_or_default();
                pre.resize(es, 0);
                match self.backend.read(addr.disk, addr.index, &mut pre) {
                    // A full-element read overwrites any recycled contents.
                    Ok(()) => {}
                    // An unreadable sector we are about to overwrite: the
                    // write remaps it, and zeros are as good an undo image
                    // as any for a sector that had no readable contents.
                    Err(DiskError::LatentSector { .. }) => pre.fill(0),
                    Err(e) => {
                        self.pre_image_pool.push(pre);
                        return Err(e);
                    }
                }
                entries.push(JournalEntry { disk: addr.disk, index: addr.index, data: pre });
            }
            if !targets.is_empty() {
                self.backend.journal_begin(&entries)?;
            }
            let mut failed: Option<(usize, DiskError)> = None;
            for (i, &(cell, addr)) in targets.iter().enumerate() {
                if let Err(e) = self.backend.write(addr.disk, addr.index, scratch.element(cell))
                {
                    failed = Some((i, e));
                    break;
                }
            }
            if let Some((written, e)) = failed {
                // Roll the completed writes back in place. A rollback write
                // to the disk that just died is fine to skip (its content
                // is invalid until rebuilt); any other rollback failure —
                // above all a crash — means the in-place undo is
                // incomplete, so the journal must survive for reopen-time
                // recovery.
                let mut undo_ok = true;
                for entry in entries[..written].iter().rev() {
                    match self.backend.write(entry.disk, entry.index, &entry.data) {
                        Ok(()) | Err(DiskError::DiskFailed { .. }) => {}
                        Err(_) => undo_ok = false,
                    }
                }
                if undo_ok && !targets.is_empty() {
                    let _ = self.backend.journal_commit();
                }
                return Err(e);
            }
            if !targets.is_empty() {
                // If the commit itself fails (crash between the last write
                // and here), the journal survives and reopen rolls the
                // whole op back — consistent with reporting the op as
                // failed.
                self.backend.journal_commit()?;
            }
            Ok(())
        })();
        // Return the pre-image buffers to the pool whatever happened:
        // `journal_begin` made its own durable copy, and the in-place undo
        // (if any) already ran above.
        self.pre_image_pool.extend(entries.into_iter().map(|e| e.data));
        write_result?;
        for &(_, addr) in &op.data_writes {
            rs.add_data_write(addr.disk);
        }
        for &(_, addr) in &op.parity_writes {
            rs.add_parity_write(addr.disk);
        }
        debug_assert_eq!(
            rs,
            crate::audit::predicted_request_set(op, self.backend.disks()),
            "committed request set diverged from the statically predicted one"
        );

        if let Some(sim) = &mut self.sim {
            self.op_latency_ms += sim.run_requests(&rs)?;
        }
        self.ledger.absorb(&rs);
        Ok(rs)
    }

    /// Executes one lowered op per stripe scratch under partitioned
    /// ownership: reads are batched through
    /// [`DiskBackend::submit_batch`], the XOR plans run on up to
    /// `threads` partitioned workers (work-stealing for skew), and the
    /// write phase commits under **one** undo journal covering the whole
    /// batch — all-or-nothing, strictly stronger than committing each op
    /// under its own journal. Accounting is shard-local: each worker
    /// absorbs its ops' request sets into a private [`LedgerShard`];
    /// on success the shards are merged (order-independently) into the
    /// cumulative ledger and returned alongside the per-op request sets,
    /// so callers can audit the merge against the receipts.
    ///
    /// Byte-identical to looping [`IoPipeline::execute`] over the ops:
    /// phases touch the backend in op order, and stripes are independent
    /// (no op reads what another writes).
    ///
    /// # Errors
    ///
    /// Returns the first [`DiskError`] any phase produced. A read-phase
    /// error commits nothing; a write-phase error rolls every stored
    /// element of the batch back to its pre-image (journal recovery
    /// covers a crash mid-phase); nothing reaches the simulator or
    /// ledger on any error.
    ///
    /// # Panics
    ///
    /// Panics if `ops`, `scratches`, and `map` disagree on length.
    pub fn execute_batch(
        &mut self,
        ops: &[LoweredOp],
        scratches: &mut [Stripe],
        map: &PartitionMap,
        threads: usize,
    ) -> Result<(Vec<RequestSet>, Vec<LedgerShard>), DiskError> {
        assert_eq!(ops.len(), scratches.len(), "one scratch per op");
        assert_eq!(map.stripes(), ops.len(), "partition map does not fit the batch");
        let disks = self.backend.disks();
        #[cfg(debug_assertions)]
        for (op, scratch) in ops.iter().zip(scratches.iter()) {
            if let Err(e) =
                crate::audit::audit_lowered(op, scratch.rows(), scratch.cols(), disks, None)
            {
                panic!("lowered op failed static audit: {e}");
            }
        }

        // Phase 1 — every op's reads, one batched submission in op order.
        let read_reqs: Vec<DiskRequest> = ops
            .iter()
            .flat_map(|op| {
                op.reads
                    .iter()
                    .map(|&(_, a)| DiskRequest::Read { disk: a.disk, index: a.index })
            })
            .collect();
        let mut completions = self.backend.submit_batch(&read_reqs).into_iter();
        for (op, scratch) in ops.iter().zip(scratches.iter_mut()) {
            for &(cell, _) in &op.reads {
                let bytes = completions
                    .next()
                    .expect("one completion per submitted read")?
                    .expect("read completions carry bytes");
                scratch.element_mut(cell).copy_from_slice(&bytes);
            }
        }

        // Phase 2 — partitioned compute with shard-local accounting: the
        // worker that runs an op's plan also absorbs its (statically
        // predicted, later re-derived) request set into its own shard.
        let (_, shards) =
            run_partitioned(map, disks, scratches, threads, |shard, i, scratch| {
                let op = &ops[i];
                if let Some(plan) = &op.plan {
                    plan.execute(scratch);
                }
                shard.absorb(&crate::audit::predicted_request_set(op, disks));
            });

        // Phase 3 — the batch's write phase under a single undo journal:
        // gather every target's pre-image (batched, unaccounted), journal
        // them durably as one record, then submit the writes. Any failed
        // entry rolls the whole batch back in place; a crash leaves the
        // journal for reopen-time rollback of everything.
        let targets: Vec<(Cell, DiskAddr)> = ops
            .iter()
            .flat_map(|op| op.data_writes.iter().chain(&op.parity_writes).copied())
            .collect();
        if !targets.is_empty() {
            let pre_reqs: Vec<DiskRequest> = targets
                .iter()
                .map(|&(_, a)| DiskRequest::Read { disk: a.disk, index: a.index })
                .collect();
            let mut entries: Vec<JournalEntry> = Vec::with_capacity(targets.len());
            for (completion, &(_, addr)) in
                self.backend.submit_batch(&pre_reqs).into_iter().zip(&targets)
            {
                let data = match completion {
                    Ok(bytes) => bytes.expect("read completions carry bytes"),
                    // An unreadable sector about to be overwritten: the
                    // write remaps it; zeros are as good an undo image as
                    // any for a sector with no readable contents.
                    Err(DiskError::LatentSector { .. }) => {
                        vec![0; self.backend.element_size()]
                    }
                    Err(e) => return Err(e),
                };
                entries.push(JournalEntry { disk: addr.disk, index: addr.index, data });
            }
            self.backend.journal_begin(&entries)?;

            let mut write_reqs: Vec<DiskRequest> = Vec::with_capacity(targets.len());
            for (op, scratch) in ops.iter().zip(scratches.iter()) {
                for &(cell, a) in op.data_writes.iter().chain(&op.parity_writes) {
                    write_reqs.push(DiskRequest::Write {
                        disk: a.disk,
                        index: a.index,
                        data: scratch.element(cell).to_vec(),
                    });
                }
            }
            let write_completions = self.backend.submit_batch(&write_reqs);
            if let Some(first_err) = write_completions
                .iter()
                .find_map(|c| c.as_ref().err())
                .cloned()
            {
                // Roll every *stored* element back in place, newest first.
                // A rollback write to a disk that just died is fine to
                // skip (its content is invalid until rebuilt); any other
                // rollback failure means the in-place undo is incomplete,
                // so the journal must survive for reopen-time recovery.
                let mut undo_ok = true;
                for (entry, completion) in
                    entries.iter().zip(&write_completions).rev()
                {
                    if completion.is_err() {
                        continue;
                    }
                    match self.backend.write(entry.disk, entry.index, &entry.data) {
                        Ok(()) | Err(DiskError::DiskFailed { .. }) => {}
                        Err(_) => undo_ok = false,
                    }
                }
                if undo_ok {
                    let _ = self.backend.journal_commit();
                }
                return Err(first_err);
            }
            self.backend.journal_commit()?;
        }

        // Phase 4 — commit accounting: per-op request sets to the
        // simulator in op order, the merged shards into the ledger once.
        let mut sets = Vec::with_capacity(ops.len());
        for op in ops {
            let rs = crate::audit::predicted_request_set(op, disks);
            if let Some(sim) = &mut self.sim {
                self.op_latency_ms += sim.run_requests(&rs)?;
            }
            sets.push(rs);
        }
        let merged = IoLedger::merge_shards(disks, shards.clone());
        debug_assert_eq!(
            merged.total(),
            sets.iter().map(RequestSet::total).sum::<u64>(),
            "merged shard totals diverged from the per-op receipts"
        );
        self.ledger.merge(&merged);
        Ok((sets, shards))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultPoint, FaultyBackend, MemBackend};
    use disk_sim::DiskProfile;

    fn addr(disk: usize, index: usize) -> DiskAddr {
        DiskAddr { disk, index }
    }

    #[test]
    fn execute_reads_plans_and_writes() {
        // 1 row × 3 cols: c2 = c0 XOR c1.
        let mut pipe = IoPipeline::new(Box::new(MemBackend::new(3, 1, 4)));
        pipe.backend_mut().write(0, 0, &[1, 2, 3, 4]).unwrap();
        pipe.backend_mut().write(1, 0, &[4, 4, 4, 4]).unwrap();

        let c = Cell::new;
        let plan = XorPlan::from_steps(1, 3, [(c(0, 2), [c(0, 0), c(0, 1)].as_slice())]);
        let op = LoweredOp {
            reads: vec![(c(0, 0), addr(0, 0)), (c(0, 1), addr(1, 0))],
            plan: Some(plan),
            data_writes: vec![],
            parity_writes: vec![(c(0, 2), addr(2, 0))],
        };
        let mut scratch = Stripe::zeroed(1, 3, 4);
        let rs = pipe.execute(&op, &mut scratch).unwrap();
        assert_eq!(rs.total_reads(), 2);
        assert_eq!(rs.parity_writes(), 1);
        let mut out = [0u8; 4];
        pipe.backend_mut().read(2, 0, &mut out).unwrap();
        assert_eq!(out, [5, 6, 7, 0]);
        assert_eq!(pipe.ledger().total(), 3);
    }

    #[test]
    fn sim_times_exactly_what_the_ledger_absorbs() {
        let mut pipe = IoPipeline::new(Box::new(MemBackend::new(2, 1, 4)));
        pipe.attach_sim(DiskArray::new(2, DiskProfile::savvio_10k()));
        let c = Cell::new;
        let op = LoweredOp {
            reads: vec![(c(0, 0), addr(0, 0))],
            plan: None,
            data_writes: vec![(c(0, 1), addr(1, 0))],
            parity_writes: vec![],
        };
        let mut scratch = Stripe::zeroed(1, 2, 4);
        pipe.begin_op();
        pipe.execute(&op, &mut scratch).unwrap();
        assert!(pipe.op_latency_ms() > 0.0);
        assert_eq!(pipe.sim().unwrap().served(), pipe.ledger().per_disk_totals());
    }

    #[test]
    fn execute_batch_matches_serial_execute() {
        // Two independent 1×3 stripes (indices 0 and 1 per disk), each
        // computing c2 = c0 XOR c1.
        let c = Cell::new;
        let make_op = |index: usize| LoweredOp {
            reads: vec![(c(0, 0), addr(0, index)), (c(0, 1), addr(1, index))],
            plan: Some(XorPlan::from_steps(1, 3, [(c(0, 2), [c(0, 0), c(0, 1)].as_slice())])),
            data_writes: vec![],
            parity_writes: vec![(c(0, 2), addr(2, index))],
        };
        let seed = |pipe: &mut IoPipeline| {
            pipe.backend_mut().write(0, 0, &[1, 2, 3, 4]).unwrap();
            pipe.backend_mut().write(1, 0, &[4, 4, 4, 4]).unwrap();
            pipe.backend_mut().write(0, 1, &[8, 8, 8, 8]).unwrap();
            pipe.backend_mut().write(1, 1, &[1, 0, 1, 0]).unwrap();
        };

        let mut serial = IoPipeline::new(Box::new(MemBackend::new(3, 2, 4)));
        seed(&mut serial);
        let mut serial_sets = Vec::new();
        for index in 0..2 {
            let mut scratch = Stripe::zeroed(1, 3, 4);
            serial_sets.push(serial.execute(&make_op(index), &mut scratch).unwrap());
        }

        let mut batched = IoPipeline::new(Box::new(MemBackend::new(3, 2, 4)));
        seed(&mut batched);
        let ops: Vec<LoweredOp> = (0..2).map(make_op).collect();
        let mut scratches = vec![Stripe::zeroed(1, 3, 4); 2];
        let map = crate::partition::PartitionMap::build(2, 2);
        let (sets, shards) = batched.execute_batch(&ops, &mut scratches, &map, 2).unwrap();

        assert_eq!(sets, serial_sets);
        assert_eq!(batched.ledger(), serial.ledger());
        let merged = IoLedger::merge_shards(3, shards);
        assert_eq!(merged.total(), batched.ledger().total());
        // The backends hold identical bytes.
        for index in 0..2 {
            let (mut a, mut b) = ([0u8; 4], [0u8; 4]);
            serial.backend_mut().read(2, index, &mut a).unwrap();
            batched.backend_mut().read(2, index, &mut b).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn execute_batch_failed_write_rolls_back_whole_batch() {
        // The batch performs 4 reads (phase 1) + 2 pre-image reads, then
        // journals and writes; the fault fires on the second write
        // (backend op 8 after the 1 setup write), so the first write must
        // be rolled back to its pre-image and nothing committed.
        let c = Cell::new;
        let inner = MemBackend::new(2, 2, 4);
        let mut faulty =
            FaultyBackend::new(Box::new(inner), vec![FaultPoint { at_op: 8, disk: 1 }]);
        faulty.write(0, 0, &[9, 9, 9, 9]).unwrap(); // op 1 — pre-existing value
        let mut pipe = IoPipeline::new(Box::new(faulty));
        let op_for = |index: usize, disk: usize| LoweredOp {
            reads: vec![(c(0, 0), addr(0, index)), (c(0, 1), addr(1, index))],
            plan: None,
            data_writes: vec![(c(0, disk), addr(disk, index))],
            parity_writes: vec![],
        };
        let ops = vec![op_for(0, 0), op_for(1, 1)];
        let mut scratches = vec![Stripe::zeroed(1, 2, 4); 2];
        scratches[0].set_element(c(0, 0), &[1, 1, 1, 1]);
        scratches[1].set_element(c(0, 1), &[2, 2, 2, 2]);
        let map = crate::partition::PartitionMap::build(2, 1);
        let err = pipe.execute_batch(&ops, &mut scratches, &map, 1).unwrap_err();
        assert_eq!(err, DiskError::DiskFailed { disk: 1 });
        // Disk 0's committed write was rolled back to its pre-image.
        let mut out = [0u8; 4];
        pipe.backend_mut().read(0, 0, &mut out).unwrap();
        assert_eq!(out, [9, 9, 9, 9]);
        assert_eq!(pipe.ledger().total(), 0);
    }

    #[test]
    fn failed_write_rolls_back_previous_writes() {
        // Fault fires on the 4th backend op. The op below performs:
        // read (1, after the setup write) + pre-image read on disk 0 (3) +
        // pre-image read on disk 1 (4 → FAULT): the write phase aborts
        // while gathering pre-images, before anything is stored.
        let inner = MemBackend::new(2, 1, 4);
        let mut faulty = FaultyBackend::new(
            Box::new(inner),
            vec![FaultPoint { at_op: 4, disk: 1 }],
        );
        faulty.write(0, 0, &[9, 9, 9, 9]).unwrap(); // op 1 — pre-existing value
        let mut pipe = IoPipeline::new(Box::new(faulty));

        let c = Cell::new;
        let mut scratch = Stripe::zeroed(1, 2, 4);
        scratch.set_element(c(0, 0), &[1, 1, 1, 1]);
        scratch.set_element(c(0, 1), &[2, 2, 2, 2]);
        let op = LoweredOp {
            reads: vec![(c(0, 1), addr(1, 0))], // op 2
            plan: None,
            data_writes: vec![(c(0, 0), addr(0, 0)), (c(0, 1), addr(1, 0))],
            parity_writes: vec![],
        };
        scratch.set_element(c(0, 0), &[1, 1, 1, 1]);
        let err = pipe.execute(&op, &mut scratch).unwrap_err();
        assert_eq!(err, DiskError::DiskFailed { disk: 1 });
        // Disk 0's write was rolled back to its pre-image.
        let mut out = [0u8; 4];
        pipe.backend_mut().read(0, 0, &mut out).unwrap();
        assert_eq!(out, [9, 9, 9, 9]);
        // Nothing reached the ledger.
        assert_eq!(pipe.ledger().total(), 0);
    }
}
