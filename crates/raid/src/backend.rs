//! Pluggable per-disk storage backends.
//!
//! A [`DiskBackend`] is the element read/write/fault surface one physical
//! disk array exposes to the I/O pipeline: `disks × elements_per_disk`
//! fixed-size elements, addressed as `(disk, index)` where
//! `index = stripe · rows + row`. Three implementations cover the
//! reproduction's needs:
//!
//! * [`MemBackend`] — RAM-resident, the default for experiments and tests;
//! * [`FileBackend`] — one file per disk in a directory, real persistence
//!   for the `hvraid` CLI (plus `volume.meta` so a volume can be reopened);
//! * [`FaultyBackend`] — wraps any backend and fails disks at
//!   deterministic operation counts, for fault-injection tests.
//!
//! Backends know nothing about codes or stripes; the volume lowers its
//! geometry to flat element addresses before calling them.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use disk_sim::DiskError;

/// The element read/write/fault surface of one disk array.
pub trait DiskBackend: Send {
    /// Number of disks.
    fn disks(&self) -> usize;

    /// Element size in bytes.
    fn element_size(&self) -> usize;

    /// Elements stored per disk (`stripes × rows` for a volume).
    fn elements_per_disk(&self) -> usize;

    /// Reads element `index` of `disk` into `buf` (exactly
    /// [`DiskBackend::element_size`] bytes).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError`] for bad addresses, failed disks, or medium
    /// errors.
    fn read(&mut self, disk: usize, index: usize, buf: &mut [u8]) -> Result<(), DiskError>;

    /// Writes `data` (exactly [`DiskBackend::element_size`] bytes) to
    /// element `index` of `disk`.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError`] for bad addresses, failed disks, or medium
    /// errors.
    fn write(&mut self, disk: usize, index: usize, data: &[u8]) -> Result<(), DiskError>;

    /// Marks `disk` failed: every subsequent request to it errors until
    /// [`DiskBackend::replace`].
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NoSuchDisk`] for a bad index.
    fn fail(&mut self, disk: usize) -> Result<(), DiskError>;

    /// Swaps in a blank spare for `disk`: clears the failure flag and
    /// zeroes its contents (the rebuild then streams every element back).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NoSuchDisk`] for a bad index.
    fn replace(&mut self, disk: usize) -> Result<(), DiskError>;

    /// True if `disk` is currently failed.
    fn is_failed(&self, disk: usize) -> bool;

    /// Short human-readable backend kind (`"mem"`, `"file"`, …).
    fn kind(&self) -> &'static str;
}

fn check_addr(
    disks: usize,
    elements: usize,
    disk: usize,
    index: usize,
) -> Result<(), DiskError> {
    if disk >= disks {
        return Err(DiskError::NoSuchDisk { disk });
    }
    if index >= elements {
        return Err(DiskError::Io { disk });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// MemBackend
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct MemDisk {
    data: Vec<u8>,
    failed: bool,
}

/// RAM-resident backend: each disk is one zero-initialized byte vector.
///
/// A fresh all-zero volume is parity-consistent for any XOR code (every
/// chain XORs to zero), so no initial encode pass is needed.
#[derive(Debug, Clone)]
pub struct MemBackend {
    element_size: usize,
    elements_per_disk: usize,
    disks: Vec<MemDisk>,
}

impl MemBackend {
    /// Creates `disks` zeroed disks of `elements_per_disk` elements each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(disks: usize, elements_per_disk: usize, element_size: usize) -> Self {
        assert!(disks > 0 && elements_per_disk > 0 && element_size > 0);
        MemBackend {
            element_size,
            elements_per_disk,
            disks: vec![
                MemDisk { data: vec![0; elements_per_disk * element_size], failed: false };
                disks
            ],
        }
    }
}

impl DiskBackend for MemBackend {
    fn disks(&self) -> usize {
        self.disks.len()
    }

    fn element_size(&self) -> usize {
        self.element_size
    }

    fn elements_per_disk(&self) -> usize {
        self.elements_per_disk
    }

    fn read(&mut self, disk: usize, index: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        check_addr(self.disks.len(), self.elements_per_disk, disk, index)?;
        let d = &self.disks[disk];
        if d.failed {
            return Err(DiskError::DiskFailed { disk });
        }
        let at = index * self.element_size;
        buf.copy_from_slice(&d.data[at..at + self.element_size]);
        Ok(())
    }

    fn write(&mut self, disk: usize, index: usize, data: &[u8]) -> Result<(), DiskError> {
        check_addr(self.disks.len(), self.elements_per_disk, disk, index)?;
        let es = self.element_size;
        let d = &mut self.disks[disk];
        if d.failed {
            return Err(DiskError::DiskFailed { disk });
        }
        d.data[index * es..(index + 1) * es].copy_from_slice(data);
        Ok(())
    }

    fn fail(&mut self, disk: usize) -> Result<(), DiskError> {
        let d = self.disks.get_mut(disk).ok_or(DiskError::NoSuchDisk { disk })?;
        d.failed = true;
        Ok(())
    }

    fn replace(&mut self, disk: usize) -> Result<(), DiskError> {
        let d = self.disks.get_mut(disk).ok_or(DiskError::NoSuchDisk { disk })?;
        d.failed = false;
        d.data.fill(0);
        Ok(())
    }

    fn is_failed(&self, disk: usize) -> bool {
        self.disks.get(disk).is_some_and(|d| d.failed)
    }

    fn kind(&self) -> &'static str {
        "mem"
    }
}

// ---------------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------------

/// One file per disk (`disk-NN.dat`) in a directory, plus `shape.meta`
/// recording the geometry and `disk-NN.failed` marker files so failure
/// state survives reopening.
pub struct FileBackend {
    dir: PathBuf,
    element_size: usize,
    elements_per_disk: usize,
    files: Vec<File>,
    failed: Vec<bool>,
}

impl std::fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .field("disks", &self.files.len())
            .field("elements_per_disk", &self.elements_per_disk)
            .field("element_size", &self.element_size)
            .finish()
    }
}

impl FileBackend {
    fn data_path(dir: &Path, disk: usize) -> PathBuf {
        dir.join(format!("disk-{disk:02}.dat"))
    }

    fn failed_path(dir: &Path, disk: usize) -> PathBuf {
        dir.join(format!("disk-{disk:02}.failed"))
    }

    /// Creates a fresh zero-filled array under `dir` (created if missing;
    /// existing disk files are truncated).
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory or files cannot be
    /// created.
    pub fn create(
        dir: impl AsRef<Path>,
        disks: usize,
        elements_per_disk: usize,
        element_size: usize,
    ) -> std::io::Result<Self> {
        assert!(disks > 0 && elements_per_disk > 0 && element_size > 0);
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let shape = format!("disks={disks}\nelements_per_disk={elements_per_disk}\nelement_size={element_size}\n");
        fs::write(dir.join("shape.meta"), shape)?;
        let mut files = Vec::with_capacity(disks);
        for disk in 0..disks {
            let _ = fs::remove_file(Self::failed_path(&dir, disk));
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(Self::data_path(&dir, disk))?;
            f.set_len((elements_per_disk * element_size) as u64)?;
            files.push(f);
        }
        Ok(FileBackend {
            dir,
            element_size,
            elements_per_disk,
            files,
            failed: vec![false; disks],
        })
    }

    /// Reopens an array previously written by [`FileBackend::create`],
    /// restoring the failure flags from the marker files.
    ///
    /// # Errors
    ///
    /// Returns an error if `shape.meta` is missing/malformed or a disk
    /// file cannot be opened.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let shape = fs::read_to_string(dir.join("shape.meta"))?;
        let field = |key: &str| -> std::io::Result<usize> {
            shape
                .lines()
                .find_map(|l| l.strip_prefix(key)?.strip_prefix('='))
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("shape.meta missing {key}"),
                    )
                })
        };
        let disks = field("disks")?;
        let elements_per_disk = field("elements_per_disk")?;
        let element_size = field("element_size")?;
        let mut files = Vec::with_capacity(disks);
        let mut failed = Vec::with_capacity(disks);
        for disk in 0..disks {
            files.push(
                OpenOptions::new().read(true).write(true).open(Self::data_path(&dir, disk))?,
            );
            failed.push(Self::failed_path(&dir, disk).exists());
        }
        Ok(FileBackend { dir, element_size, elements_per_disk, files, failed })
    }

    /// The directory holding the disk files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl DiskBackend for FileBackend {
    fn disks(&self) -> usize {
        self.files.len()
    }

    fn element_size(&self) -> usize {
        self.element_size
    }

    fn elements_per_disk(&self) -> usize {
        self.elements_per_disk
    }

    fn read(&mut self, disk: usize, index: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        check_addr(self.files.len(), self.elements_per_disk, disk, index)?;
        if self.failed[disk] {
            return Err(DiskError::DiskFailed { disk });
        }
        let f = &mut self.files[disk];
        f.seek(SeekFrom::Start((index * self.element_size) as u64))
            .and_then(|_| f.read_exact(buf))
            .map_err(|_| DiskError::Io { disk })
    }

    fn write(&mut self, disk: usize, index: usize, data: &[u8]) -> Result<(), DiskError> {
        check_addr(self.files.len(), self.elements_per_disk, disk, index)?;
        if self.failed[disk] {
            return Err(DiskError::DiskFailed { disk });
        }
        let f = &mut self.files[disk];
        f.seek(SeekFrom::Start((index * self.element_size) as u64))
            .and_then(|_| f.write_all(data))
            .map_err(|_| DiskError::Io { disk })
    }

    fn fail(&mut self, disk: usize) -> Result<(), DiskError> {
        if disk >= self.files.len() {
            return Err(DiskError::NoSuchDisk { disk });
        }
        self.failed[disk] = true;
        let _ = fs::write(Self::failed_path(&self.dir, disk), b"failed\n");
        Ok(())
    }

    fn replace(&mut self, disk: usize) -> Result<(), DiskError> {
        if disk >= self.files.len() {
            return Err(DiskError::NoSuchDisk { disk });
        }
        // A blank spare: truncate to zero and re-extend with zeroes.
        let f = &mut self.files[disk];
        f.set_len(0)
            .and_then(|_| f.set_len((self.elements_per_disk * self.element_size) as u64))
            .map_err(|_| DiskError::Io { disk })?;
        self.failed[disk] = false;
        let _ = fs::remove_file(Self::failed_path(&self.dir, disk));
        Ok(())
    }

    fn is_failed(&self, disk: usize) -> bool {
        self.failed.get(disk).copied().unwrap_or(false)
    }

    fn kind(&self) -> &'static str {
        "file"
    }
}

// ---------------------------------------------------------------------------
// FaultyBackend
// ---------------------------------------------------------------------------

/// One scheduled fault: after `at_op` element operations have been served,
/// `disk` fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// Operation count (reads + writes served so far) that triggers the
    /// fault.
    pub at_op: u64,
    /// The disk to fail.
    pub disk: usize,
}

/// Deterministic fault injector wrapping any backend: disks fail at fixed
/// operation counts, and an optional per-op latency is accumulated so
/// tests can assert slow-path behavior without wall clocks.
pub struct FaultyBackend {
    inner: Box<dyn DiskBackend>,
    schedule: Vec<FaultPoint>,
    ops: u64,
    latency_per_op_ms: f64,
    accumulated_latency_ms: f64,
}

impl std::fmt::Debug for FaultyBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyBackend")
            .field("inner", &self.inner.kind())
            .field("schedule", &self.schedule)
            .field("ops", &self.ops)
            .finish()
    }
}

impl FaultyBackend {
    /// Wraps `inner`, failing the scheduled disks as operations accrue.
    pub fn new(inner: Box<dyn DiskBackend>, schedule: Vec<FaultPoint>) -> Self {
        FaultyBackend {
            inner,
            schedule,
            ops: 0,
            latency_per_op_ms: 0.0,
            accumulated_latency_ms: 0.0,
        }
    }

    /// Adds a synthetic service latency per element operation.
    pub fn with_latency(mut self, ms_per_op: f64) -> Self {
        self.latency_per_op_ms = ms_per_op;
        self
    }

    /// Total synthetic latency accumulated so far.
    pub fn accumulated_latency_ms(&self) -> f64 {
        self.accumulated_latency_ms
    }

    /// Operations (reads + writes) served or rejected so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    fn tick(&mut self) {
        self.ops += 1;
        self.accumulated_latency_ms += self.latency_per_op_ms;
        let due: Vec<usize> = self
            .schedule
            .iter()
            .filter(|p| p.at_op <= self.ops)
            .map(|p| p.disk)
            .collect();
        self.schedule.retain(|p| p.at_op > self.ops);
        for disk in due {
            let _ = self.inner.fail(disk);
        }
    }
}

impl DiskBackend for FaultyBackend {
    fn disks(&self) -> usize {
        self.inner.disks()
    }

    fn element_size(&self) -> usize {
        self.inner.element_size()
    }

    fn elements_per_disk(&self) -> usize {
        self.inner.elements_per_disk()
    }

    fn read(&mut self, disk: usize, index: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        self.tick();
        self.inner.read(disk, index, buf)
    }

    fn write(&mut self, disk: usize, index: usize, data: &[u8]) -> Result<(), DiskError> {
        self.tick();
        self.inner.write(disk, index, data)
    }

    fn fail(&mut self, disk: usize) -> Result<(), DiskError> {
        self.inner.fail(disk)
    }

    fn replace(&mut self, disk: usize) -> Result<(), DiskError> {
        // A replaced disk is healthy again; drop any pending fault for it
        // (the schedule described the old spindle).
        self.schedule.retain(|p| p.disk != disk);
        self.inner.replace(disk)
    }

    fn is_failed(&self, disk: usize) -> bool {
        self.inner.is_failed(disk)
    }

    fn kind(&self) -> &'static str {
        "faulty"
    }
}

// ---------------------------------------------------------------------------
// VolumeMeta
// ---------------------------------------------------------------------------

/// Volume-level metadata persisted next to a [`FileBackend`]'s disk files
/// (`volume.meta`), so `hvraid fsck`/reopen can rebuild the same
/// code + addressing without re-deriving them from the shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeMeta {
    /// Code name as registered in the CLI registry (e.g. `"hv"`).
    pub code: String,
    /// The code's prime parameter.
    pub p: usize,
    /// Stripes in the volume.
    pub stripes: usize,
    /// Element size in bytes.
    pub element_size: usize,
    /// Whether stripe rotation is enabled.
    pub rotate: bool,
}

impl VolumeMeta {
    /// Writes `volume.meta` into `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let body = format!(
            "code={}\np={}\nstripes={}\nelement_size={}\nrotate={}\n",
            self.code, self.p, self.stripes, self.element_size, self.rotate
        );
        fs::write(dir.as_ref().join("volume.meta"), body)
    }

    /// Reads `volume.meta` from `dir`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file is missing or malformed.
    pub fn load(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let body = fs::read_to_string(dir.as_ref().join("volume.meta"))?;
        let field = |key: &str| -> std::io::Result<String> {
            body.lines()
                .find_map(|l| l.strip_prefix(key)?.strip_prefix('='))
                .map(|v| v.trim().to_string())
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("volume.meta missing {key}"),
                    )
                })
        };
        let num = |key: &str| -> std::io::Result<usize> {
            field(key)?.parse().map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("volume.meta field {key} is not a number"),
                )
            })
        };
        Ok(VolumeMeta {
            code: field("code")?,
            p: num("p")?,
            stripes: num("stripes")?,
            element_size: num("element_size")?,
            rotate: field("rotate")? == "true",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &mut dyn DiskBackend) {
        let es = backend.element_size();
        let payload: Vec<u8> = (0..es as u8).collect();
        backend.write(1, 3, &payload).unwrap();
        let mut buf = vec![0u8; es];
        backend.read(1, 3, &mut buf).unwrap();
        assert_eq!(buf, payload);
        // Untouched elements stay zero.
        backend.read(0, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_backend_roundtrip_and_fault() {
        let mut b = MemBackend::new(4, 8, 16);
        roundtrip(&mut b);
        b.fail(1).unwrap();
        assert!(b.is_failed(1));
        let mut buf = [0u8; 16];
        assert_eq!(b.read(1, 3, &mut buf), Err(DiskError::DiskFailed { disk: 1 }));
        b.replace(1).unwrap();
        b.read(1, 3, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0), "spare must come up blank");
    }

    #[test]
    fn mem_backend_rejects_bad_addresses() {
        let mut b = MemBackend::new(2, 4, 8);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(5, 0, &mut buf), Err(DiskError::NoSuchDisk { disk: 5 }));
        assert_eq!(b.read(0, 99, &mut buf), Err(DiskError::Io { disk: 0 }));
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("hvraid-fb-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut b = FileBackend::create(&dir, 3, 4, 8).unwrap();
            roundtrip(&mut b);
            b.fail(2).unwrap();
        }
        {
            let mut b = FileBackend::open(&dir).unwrap();
            assert_eq!(b.disks(), 3);
            assert_eq!(b.elements_per_disk(), 4);
            assert_eq!(b.element_size(), 8);
            assert!(b.is_failed(2), "failure marker must survive reopen");
            let mut buf = [0u8; 8];
            b.read(1, 3, &mut buf).unwrap();
            assert_eq!(buf.to_vec(), (0..8u8).collect::<Vec<_>>());
            b.replace(2).unwrap();
            assert!(!b.is_failed(2));
        }
        let b = FileBackend::open(&dir).unwrap();
        assert!(!b.is_failed(2), "replacement must clear the marker");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_backend_fails_on_schedule() {
        let inner = MemBackend::new(3, 4, 8);
        let mut b = FaultyBackend::new(
            Box::new(inner),
            vec![FaultPoint { at_op: 2, disk: 1 }],
        )
        .with_latency(0.5);
        let mut buf = [0u8; 8];
        b.read(1, 0, &mut buf).unwrap(); // op 1: fine
        assert!(!b.is_failed(1));
        assert_eq!(b.read(1, 0, &mut buf), Err(DiskError::DiskFailed { disk: 1 }));
        assert!(b.is_failed(1));
        // Other disks keep serving.
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(b.ops(), 3);
        assert!((b.accumulated_latency_ms() - 1.5).abs() < 1e-12);
        // Replacement clears both the failure and any stale schedule.
        b.replace(1).unwrap();
        b.read(1, 0, &mut buf).unwrap();
    }

    #[test]
    fn volume_meta_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hvraid-vm-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let meta = VolumeMeta {
            code: "hv".into(),
            p: 7,
            stripes: 4,
            element_size: 16,
            rotate: true,
        };
        meta.save(&dir).unwrap();
        assert_eq!(VolumeMeta::load(&dir).unwrap(), meta);
        let _ = fs::remove_dir_all(&dir);
    }
}
