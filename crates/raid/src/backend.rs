//! Pluggable per-disk storage backends.
//!
//! A [`DiskBackend`] is the element read/write/fault surface one physical
//! disk array exposes to the I/O pipeline: `disks × elements_per_disk`
//! fixed-size elements, addressed as `(disk, index)` where
//! `index = stripe · rows + row`. Three implementations cover the
//! reproduction's needs:
//!
//! * [`MemBackend`] — RAM-resident, the default for experiments and tests;
//! * [`FileBackend`] — one file per disk in a directory, real persistence
//!   for the `hvraid` CLI (plus `volume.meta` so a volume can be reopened);
//! * [`FaultyBackend`] — wraps any backend and injects the full error
//!   taxonomy at deterministic points: whole-disk death, transient errors,
//!   latent bad sectors, torn writes, and crash-at-op-K.
//!
//! Backends know nothing about codes or stripes; the volume lowers its
//! geometry to flat element addresses before calling them. Beyond element
//! I/O, the trait carries two durability hooks the volume drives:
//! an undo *journal* ([`DiskBackend::journal_begin`] /
//! [`DiskBackend::journal_commit`]) so a crash mid-multi-element-write can
//! be rolled back on reopen, and a rebuild *checkpoint*
//! ([`DiskBackend::save_checkpoint`] / [`DiskBackend::load_checkpoint`]) so
//! an interrupted rebuild resumes where it left off. Volatile backends
//! ignore both (nothing of theirs survives a crash anyway);
//! [`FileBackend`] persists the journal as an fsync-ordered sidecar file
//! and the checkpoint as a line in `volume.meta`.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use disk_sim::DiskError;

/// A pre-image record in the undo journal: the bytes element
/// `(disk, index)` held before a multi-element write began.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Physical disk.
    pub disk: usize,
    /// Element index on that disk.
    pub index: usize,
    /// The element's contents before the write.
    pub data: Vec<u8>,
}

/// Persistent progress marker for a background rebuild: which disks are
/// being reconstructed onto spares and the first stripe not yet rebuilt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebuildCheckpoint {
    /// Disks being rebuilt (sorted; one or two entries in RAID-6).
    pub disks: Vec<usize>,
    /// First stripe whose elements have not all been rewritten yet.
    pub next_stripe: usize,
}

impl RebuildCheckpoint {
    /// Serializes as `d0+d1@next_stripe` (e.g. `0+3@17`).
    pub fn encode(&self) -> String {
        let disks: Vec<String> = self.disks.iter().map(|d| d.to_string()).collect();
        format!("{}@{}", disks.join("+"), self.next_stripe)
    }

    /// Parses the [`RebuildCheckpoint::encode`] form.
    pub fn decode(s: &str) -> Option<Self> {
        let (disks, next) = s.split_once('@')?;
        let disks: Option<Vec<usize>> =
            disks.split('+').map(|d| d.trim().parse().ok()).collect();
        let disks = disks?;
        if disks.is_empty() {
            return None;
        }
        Some(RebuildCheckpoint { disks, next_stripe: next.trim().parse().ok()? })
    }
}

/// One element request of a batched submission — the io_uring-shaped
/// "submission queue entry" of [`DiskBackend::submit_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskRequest {
    /// Read element `index` of `disk`.
    Read {
        /// Physical disk.
        disk: usize,
        /// Element index on that disk.
        index: usize,
    },
    /// Write `data` (exactly [`DiskBackend::element_size`] bytes) to
    /// element `index` of `disk`.
    Write {
        /// Physical disk.
        disk: usize,
        /// Element index on that disk.
        index: usize,
        /// The bytes to write.
        data: Vec<u8>,
    },
}

impl DiskRequest {
    /// The disk this request addresses.
    pub fn disk(&self) -> usize {
        match self {
            DiskRequest::Read { disk, .. } | DiskRequest::Write { disk, .. } => *disk,
        }
    }
}

/// One completed entry of a [`DiskBackend::submit_batch`] call:
/// `Ok(Some(bytes))` for a served read, `Ok(None)` for a served write,
/// `Err` for a per-request failure.
pub type DiskCompletion = Result<Option<Vec<u8>>, DiskError>;

/// The element read/write/fault surface of one disk array.
pub trait DiskBackend: Send {
    /// Number of disks.
    fn disks(&self) -> usize;

    /// Element size in bytes.
    fn element_size(&self) -> usize;

    /// Elements stored per disk (`stripes × rows` for a volume).
    fn elements_per_disk(&self) -> usize;

    /// Reads element `index` of `disk` into `buf` (exactly
    /// [`DiskBackend::element_size`] bytes).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError`] for bad addresses, failed disks, or medium
    /// errors.
    fn read(&mut self, disk: usize, index: usize, buf: &mut [u8]) -> Result<(), DiskError>;

    /// Writes `data` (exactly [`DiskBackend::element_size`] bytes) to
    /// element `index` of `disk`.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError`] for bad addresses, failed disks, or medium
    /// errors.
    fn write(&mut self, disk: usize, index: usize, data: &[u8]) -> Result<(), DiskError>;

    /// Submits a batch of element requests and returns one completion per
    /// request, in submission order. Nothing in the contract requires the
    /// requests to be served sequentially — a backend may reorder or
    /// parallelize internally — but completions always line up with their
    /// submissions, and each request succeeds or fails on its own (a
    /// failed entry never poisons its neighbors).
    ///
    /// The default implementation serves the batch sequentially through
    /// [`DiskBackend::read`] / [`DiskBackend::write`], which keeps
    /// op-count-triggered fault schedules deterministic; backends with a
    /// real parallel substrate (see [`FileBackend`]) override it.
    fn submit_batch(&mut self, batch: &[DiskRequest]) -> Vec<DiskCompletion> {
        batch
            .iter()
            .map(|req| match req {
                DiskRequest::Read { disk, index } => {
                    let mut buf = vec![0u8; self.element_size()];
                    self.read(*disk, *index, &mut buf).map(|()| Some(buf))
                }
                DiskRequest::Write { disk, index, data } => {
                    self.write(*disk, *index, data).map(|()| None)
                }
            })
            .collect()
    }

    /// Marks `disk` failed: every subsequent request to it errors until
    /// [`DiskBackend::replace`].
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NoSuchDisk`] for a bad index.
    fn fail(&mut self, disk: usize) -> Result<(), DiskError>;

    /// Swaps in a blank spare for `disk`: clears the failure flag and
    /// zeroes its contents (the rebuild then streams every element back).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NoSuchDisk`] for a bad index.
    fn replace(&mut self, disk: usize) -> Result<(), DiskError>;

    /// True if `disk` is currently failed.
    fn is_failed(&self, disk: usize) -> bool;

    /// Short human-readable backend kind (`"mem"`, `"file"`, …).
    fn kind(&self) -> &'static str;

    /// Durably records the pre-images of an imminent multi-element write,
    /// so a crash mid-write can be rolled back on reopen. Volatile
    /// backends may ignore this (the default does nothing): nothing of
    /// theirs survives a crash, so there is nothing to roll back.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError`] if the journal cannot be made durable.
    fn journal_begin(&mut self, _entries: &[JournalEntry]) -> Result<(), DiskError> {
        Ok(())
    }

    /// Discards the journal written by the last
    /// [`DiskBackend::journal_begin`]: the write completed (or was rolled
    /// back in place) and its undo log is no longer needed.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError`] if the journal cannot be removed.
    fn journal_commit(&mut self) -> Result<(), DiskError> {
        Ok(())
    }

    /// Persists (`Some`) or clears (`None`) the background-rebuild
    /// checkpoint. The default does nothing (volatile backends cannot be
    /// reopened, so there is nothing to resume).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError`] if the checkpoint cannot be made durable.
    fn save_checkpoint(&mut self, _cp: Option<&RebuildCheckpoint>) -> Result<(), DiskError> {
        Ok(())
    }

    /// Reads back the persisted rebuild checkpoint, if any.
    fn load_checkpoint(&self) -> Option<RebuildCheckpoint> {
        None
    }

    /// Downcast hook: the [`FaultyBackend`] wrapping this backend, if this
    /// *is* one — lets fault-driving code (chaos harness, tests) inject
    /// faults through a `Box<dyn DiskBackend>` without keeping a second
    /// handle.
    fn as_faulty_mut(&mut self) -> Option<&mut FaultyBackend> {
        None
    }
}

fn check_addr(
    disks: usize,
    elements: usize,
    disk: usize,
    index: usize,
) -> Result<(), DiskError> {
    if disk >= disks {
        return Err(DiskError::NoSuchDisk { disk });
    }
    if index >= elements {
        return Err(DiskError::Io { disk });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// MemBackend
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct MemDisk {
    data: Vec<u8>,
    failed: bool,
}

/// RAM-resident backend: each disk is one zero-initialized byte vector.
///
/// A fresh all-zero volume is parity-consistent for any XOR code (every
/// chain XORs to zero), so no initial encode pass is needed.
#[derive(Debug, Clone)]
pub struct MemBackend {
    element_size: usize,
    elements_per_disk: usize,
    disks: Vec<MemDisk>,
}

impl MemBackend {
    /// Creates `disks` zeroed disks of `elements_per_disk` elements each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(disks: usize, elements_per_disk: usize, element_size: usize) -> Self {
        assert!(disks > 0 && elements_per_disk > 0 && element_size > 0);
        MemBackend {
            element_size,
            elements_per_disk,
            disks: vec![
                MemDisk { data: vec![0; elements_per_disk * element_size], failed: false };
                disks
            ],
        }
    }
}

impl DiskBackend for MemBackend {
    fn disks(&self) -> usize {
        self.disks.len()
    }

    fn element_size(&self) -> usize {
        self.element_size
    }

    fn elements_per_disk(&self) -> usize {
        self.elements_per_disk
    }

    fn read(&mut self, disk: usize, index: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        check_addr(self.disks.len(), self.elements_per_disk, disk, index)?;
        let d = &self.disks[disk];
        if d.failed {
            return Err(DiskError::DiskFailed { disk });
        }
        let at = index * self.element_size;
        buf.copy_from_slice(&d.data[at..at + self.element_size]);
        Ok(())
    }

    fn write(&mut self, disk: usize, index: usize, data: &[u8]) -> Result<(), DiskError> {
        check_addr(self.disks.len(), self.elements_per_disk, disk, index)?;
        let es = self.element_size;
        let d = &mut self.disks[disk];
        if d.failed {
            return Err(DiskError::DiskFailed { disk });
        }
        d.data[index * es..(index + 1) * es].copy_from_slice(data);
        Ok(())
    }

    fn fail(&mut self, disk: usize) -> Result<(), DiskError> {
        let d = self.disks.get_mut(disk).ok_or(DiskError::NoSuchDisk { disk })?;
        d.failed = true;
        Ok(())
    }

    fn replace(&mut self, disk: usize) -> Result<(), DiskError> {
        let d = self.disks.get_mut(disk).ok_or(DiskError::NoSuchDisk { disk })?;
        d.failed = false;
        d.data.fill(0);
        Ok(())
    }

    fn is_failed(&self, disk: usize) -> bool {
        self.disks.get(disk).is_some_and(|d| d.failed)
    }

    fn kind(&self) -> &'static str {
        "mem"
    }
}

// ---------------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------------

/// What [`FileBackend::open`] found in the undo-journal sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalRecovery {
    /// A complete journal was found: the interrupted write's pre-images
    /// were restored, undoing a torn multi-element update.
    RolledBack {
        /// Elements rewritten from their journaled pre-images.
        elements: usize,
    },
    /// The journal itself was torn (truncated or checksum mismatch): the
    /// crash hit *during* `journal_begin`, before any element was
    /// overwritten, so the journal is discarded and the data is intact.
    DiscardedTorn,
}

/// One file per disk (`disk-NN.dat`) in a directory, plus `shape.meta`
/// recording the geometry and `disk-NN.failed` marker files so failure
/// state survives reopening. Two durability sidecars ride along:
/// `undo.journal` (pre-images of an in-flight multi-element write, written
/// with fsync-then-rename ordering so it is either absent or complete) and
/// a `rebuild_checkpoint=` line in `volume.meta`.
pub struct FileBackend {
    dir: PathBuf,
    element_size: usize,
    elements_per_disk: usize,
    files: Vec<File>,
    failed: Vec<bool>,
    recovered: Option<JournalRecovery>,
    /// Worker threads for [`DiskBackend::submit_batch`]; defaults to the
    /// host's logical core count, clamped per batch to the disks touched.
    io_threads: usize,
}

const JOURNAL_MAGIC: &[u8; 4] = b"HVJ1";

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_journal(entries: &[JournalEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(JOURNAL_MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&(e.disk as u32).to_le_bytes());
        out.extend_from_slice(&(e.index as u32).to_le_bytes());
        out.extend_from_slice(&(e.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&e.data);
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Parses a journal file; `None` means torn (truncated, bad magic, or
/// checksum mismatch) — nothing may be applied from it.
fn decode_journal(bytes: &[u8], element_size: usize) -> Option<Vec<JournalEntry>> {
    if bytes.len() < JOURNAL_MAGIC.len() + 4 + 8 || &bytes[..4] != JOURNAL_MAGIC {
        return None;
    }
    let (body, sum) = bytes.split_at(bytes.len() - 8);
    if fnv1a64(body) != u64::from_le_bytes(sum.try_into().ok()?) {
        return None;
    }
    let mut at = 4;
    let u32_at = |at: usize| -> Option<u32> {
        Some(u32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?))
    };
    let count = u32_at(at)? as usize;
    at += 4;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let disk = u32_at(at)? as usize;
        let index = u32_at(at + 4)? as usize;
        let len = u32_at(at + 8)? as usize;
        if len != element_size {
            return None;
        }
        let data = body.get(at + 12..at + 12 + len)?.to_vec();
        entries.push(JournalEntry { disk, index, data });
        at += 12 + len;
    }
    if at != body.len() {
        return None;
    }
    Some(entries)
}

impl std::fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .field("disks", &self.files.len())
            .field("elements_per_disk", &self.elements_per_disk)
            .field("element_size", &self.element_size)
            .finish()
    }
}

impl FileBackend {
    fn data_path(dir: &Path, disk: usize) -> PathBuf {
        dir.join(format!("disk-{disk:02}.dat"))
    }

    fn failed_path(dir: &Path, disk: usize) -> PathBuf {
        dir.join(format!("disk-{disk:02}.failed"))
    }

    fn journal_path(dir: &Path) -> PathBuf {
        dir.join("undo.journal")
    }

    /// Creates a fresh zero-filled array under `dir` (created if missing;
    /// existing disk files are truncated).
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory or files cannot be
    /// created.
    pub fn create(
        dir: impl AsRef<Path>,
        disks: usize,
        elements_per_disk: usize,
        element_size: usize,
    ) -> std::io::Result<Self> {
        assert!(disks > 0 && elements_per_disk > 0 && element_size > 0);
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let shape = format!("disks={disks}\nelements_per_disk={elements_per_disk}\nelement_size={element_size}\n");
        fs::write(dir.join("shape.meta"), shape)?;
        let _ = fs::remove_file(Self::journal_path(&dir));
        let _ = fs::remove_file(dir.join("undo.journal.tmp"));
        let mut files = Vec::with_capacity(disks);
        for disk in 0..disks {
            let _ = fs::remove_file(Self::failed_path(&dir, disk));
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(Self::data_path(&dir, disk))?;
            f.set_len((elements_per_disk * element_size) as u64)?;
            files.push(f);
        }
        Ok(FileBackend {
            dir,
            element_size,
            elements_per_disk,
            files,
            failed: vec![false; disks],
            recovered: None,
            io_threads: default_io_threads(),
        })
    }

    /// Reopens an array previously written by [`FileBackend::create`],
    /// restoring the failure flags from the marker files.
    ///
    /// # Errors
    ///
    /// Returns an error if `shape.meta` is missing/malformed or a disk
    /// file cannot be opened.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let shape = fs::read_to_string(dir.join("shape.meta"))?;
        let field = |key: &str| -> std::io::Result<usize> {
            shape
                .lines()
                .find_map(|l| l.strip_prefix(key)?.strip_prefix('='))
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("shape.meta missing {key}"),
                    )
                })
        };
        let disks = field("disks")?;
        let elements_per_disk = field("elements_per_disk")?;
        let element_size = field("element_size")?;
        let mut files = Vec::with_capacity(disks);
        let mut failed = Vec::with_capacity(disks);
        for disk in 0..disks {
            files.push(
                OpenOptions::new().read(true).write(true).open(Self::data_path(&dir, disk))?,
            );
            failed.push(Self::failed_path(&dir, disk).exists());
        }
        let mut backend = FileBackend {
            dir,
            element_size,
            elements_per_disk,
            files,
            failed,
            recovered: None,
            io_threads: default_io_threads(),
        };
        backend.recover_journal()?;
        Ok(backend)
    }

    /// Crash recovery: a leftover `undo.journal` means a multi-element
    /// write was interrupted. A *complete* journal (checksum verifies) is
    /// rolled back — every journaled pre-image is rewritten, undoing the
    /// torn update; a torn journal means the crash preceded any element
    /// write, so it is simply discarded. Either way the journal file is
    /// removed. A stale `undo.journal.tmp` (crash during `journal_begin`,
    /// before the rename) is always discarded.
    fn recover_journal(&mut self) -> std::io::Result<()> {
        let _ = fs::remove_file(self.dir.join("undo.journal.tmp"));
        let path = Self::journal_path(&self.dir);
        let Ok(bytes) = fs::read(&path) else { return Ok(()) };
        let valid = decode_journal(&bytes, self.element_size).filter(|entries| {
            entries.iter().all(|e| {
                e.disk < self.files.len() && e.index < self.elements_per_disk
            })
        });
        self.recovered = Some(match valid {
            Some(entries) => {
                for e in &entries {
                    // Restore straight to the file, bypassing the failure
                    // flag: a pre-image is always the most consistent
                    // content this element can have.
                    let f = &mut self.files[e.disk];
                    f.seek(SeekFrom::Start((e.index * self.element_size) as u64))?;
                    f.write_all(&e.data)?;
                    f.sync_all()?;
                }
                JournalRecovery::RolledBack { elements: entries.len() }
            }
            None => JournalRecovery::DiscardedTorn,
        });
        fs::remove_file(&path)?;
        Ok(())
    }

    /// What [`FileBackend::open`] found in the undo journal, if anything:
    /// `Some` means the previous process died mid-write and recovery
    /// action was taken.
    pub fn recovered_journal(&self) -> Option<JournalRecovery> {
        self.recovered
    }

    /// The directory holding the disk files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Caps the worker threads [`DiskBackend::submit_batch`] may use
    /// (`0` and `1` both mean sequential).
    pub fn set_io_threads(&mut self, threads: usize) {
        self.io_threads = threads.max(1);
    }
}

/// Default `submit_batch` parallelism: one worker per logical core.
fn default_io_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

impl DiskBackend for FileBackend {
    fn disks(&self) -> usize {
        self.files.len()
    }

    fn element_size(&self) -> usize {
        self.element_size
    }

    fn elements_per_disk(&self) -> usize {
        self.elements_per_disk
    }

    fn read(&mut self, disk: usize, index: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        check_addr(self.files.len(), self.elements_per_disk, disk, index)?;
        if self.failed[disk] {
            return Err(DiskError::DiskFailed { disk });
        }
        let f = &mut self.files[disk];
        f.seek(SeekFrom::Start((index * self.element_size) as u64))
            .and_then(|_| f.read_exact(buf))
            .map_err(|_| DiskError::Io { disk })
    }

    fn write(&mut self, disk: usize, index: usize, data: &[u8]) -> Result<(), DiskError> {
        check_addr(self.files.len(), self.elements_per_disk, disk, index)?;
        if self.failed[disk] {
            return Err(DiskError::DiskFailed { disk });
        }
        let f = &mut self.files[disk];
        f.seek(SeekFrom::Start((index * self.element_size) as u64))
            .and_then(|_| f.write_all(data))
            .map_err(|_| DiskError::Io { disk })
    }

    /// Thread-pooled batch submission: requests are grouped per disk and
    /// distinct disks are served concurrently with positioned I/O
    /// (`pread`/`pwrite`, no shared seek cursor). Requests to the *same*
    /// disk stay in submission order, so a read after a write in one
    /// batch observes the write — the same ordering the sequential
    /// default provides.
    #[cfg(unix)]
    fn submit_batch(&mut self, batch: &[DiskRequest]) -> Vec<DiskCompletion> {
        use std::os::unix::fs::FileExt;
        let es = self.element_size;
        let mut results: Vec<Option<DiskCompletion>> =
            (0..batch.len()).map(|_| None).collect();
        // Per-disk queues of batch positions; bad addresses and failed
        // disks complete inline, exactly like the sequential path.
        let mut queues: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut by_disk: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, req) in batch.iter().enumerate() {
            let (disk, index) = match req {
                DiskRequest::Read { disk, index } => (*disk, *index),
                DiskRequest::Write { disk, index, .. } => (*disk, *index),
            };
            if let Err(e) = check_addr(self.files.len(), self.elements_per_disk, disk, index)
            {
                results[i] = Some(Err(e));
                continue;
            }
            if self.failed[disk] {
                results[i] = Some(Err(DiskError::DiskFailed { disk }));
                continue;
            }
            let q = *by_disk.entry(disk).or_insert_with(|| {
                queues.push((disk, Vec::new()));
                queues.len() - 1
            });
            queues[q].1.push(i);
        }
        let files = &self.files;
        let serve = |i: usize| -> DiskCompletion {
            let offset = |index: usize| (index * es) as u64;
            match &batch[i] {
                DiskRequest::Read { disk, index } => {
                    let mut buf = vec![0u8; es];
                    files[*disk]
                        .read_exact_at(&mut buf, offset(*index))
                        .map(|()| Some(buf))
                        .map_err(|_| DiskError::Io { disk: *disk })
                }
                DiskRequest::Write { disk, index, data } => files[*disk]
                    .write_all_at(data, offset(*index))
                    .map(|()| None)
                    .map_err(|_| DiskError::Io { disk: *disk }),
            }
        };
        let workers = self.io_threads.clamp(1, queues.len().max(1));
        let served: Vec<(usize, DiskCompletion)> = if workers <= 1 {
            queues
                .iter()
                .flat_map(|(_, idxs)| idxs.iter().map(|&i| (i, serve(i))))
                .collect()
        } else {
            let chunk = queues.len().div_ceil(workers);
            let serve = &serve;
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = queues
                    .chunks(chunk)
                    .map(|qs| {
                        s.spawn(move |_| {
                            qs.iter()
                                .flat_map(|(_, idxs)| idxs.iter().map(|&i| (i, serve(i))))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("submit_batch worker panicked"))
                    .collect()
            })
            .expect("submit_batch scope failed")
        };
        for (i, completion) in served {
            results[i] = Some(completion);
        }
        results.into_iter().map(|r| r.expect("request neither served nor rejected")).collect()
    }

    fn fail(&mut self, disk: usize) -> Result<(), DiskError> {
        if disk >= self.files.len() {
            return Err(DiskError::NoSuchDisk { disk });
        }
        self.failed[disk] = true;
        let _ = fs::write(Self::failed_path(&self.dir, disk), b"failed\n");
        Ok(())
    }

    fn replace(&mut self, disk: usize) -> Result<(), DiskError> {
        if disk >= self.files.len() {
            return Err(DiskError::NoSuchDisk { disk });
        }
        // A blank spare: truncate to zero and re-extend with zeroes.
        let f = &mut self.files[disk];
        f.set_len(0)
            .and_then(|_| f.set_len((self.elements_per_disk * self.element_size) as u64))
            .map_err(|_| DiskError::Io { disk })?;
        self.failed[disk] = false;
        let _ = fs::remove_file(Self::failed_path(&self.dir, disk));
        Ok(())
    }

    fn is_failed(&self, disk: usize) -> bool {
        self.failed.get(disk).copied().unwrap_or(false)
    }

    fn kind(&self) -> &'static str {
        "file"
    }

    fn journal_begin(&mut self, entries: &[JournalEntry]) -> Result<(), DiskError> {
        if entries.is_empty() {
            return Ok(());
        }
        let bytes = encode_journal(entries);
        let tmp = self.dir.join("undo.journal.tmp");
        // fsync-then-rename: the journal is either absent or complete,
        // never observably half-written.
        let write = || -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, Self::journal_path(&self.dir))
        };
        write().map_err(|_| DiskError::Io { disk: 0 })
    }

    fn journal_commit(&mut self) -> Result<(), DiskError> {
        match fs::remove_file(Self::journal_path(&self.dir)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(_) => Err(DiskError::Io { disk: 0 }),
        }
    }

    fn save_checkpoint(&mut self, cp: Option<&RebuildCheckpoint>) -> Result<(), DiskError> {
        let meta = self.dir.join("volume.meta");
        let mut body: String = fs::read_to_string(&meta)
            .unwrap_or_else(|_| String::from("version=1\n"))
            .lines()
            .filter(|l| !l.starts_with("rebuild_checkpoint="))
            .map(|l| format!("{l}\n"))
            .collect();
        if let Some(cp) = cp {
            body.push_str(&format!("rebuild_checkpoint={}\n", cp.encode()));
        }
        let tmp = self.dir.join("volume.meta.tmp");
        let write = || -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, &meta)
        };
        write().map_err(|_| DiskError::Io { disk: 0 })
    }

    fn load_checkpoint(&self) -> Option<RebuildCheckpoint> {
        let body = fs::read_to_string(self.dir.join("volume.meta")).ok()?;
        let v = body.lines().find_map(|l| l.strip_prefix("rebuild_checkpoint="))?;
        RebuildCheckpoint::decode(v.trim())
    }
}

// ---------------------------------------------------------------------------
// FaultyBackend
// ---------------------------------------------------------------------------

/// One scheduled fault: after `at_op` element operations have been served,
/// `disk` fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// Operation count (reads + writes served so far) that triggers the
    /// fault.
    pub at_op: u64,
    /// The disk to fail.
    pub disk: usize,
}

/// A fault [`FaultyBackend::inject`] can introduce, covering the whole
/// [`disk_sim::ErrorClass`] taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The disk dies now: every request errors until replaced.
    Dead {
        /// The failing disk.
        disk: usize,
    },
    /// The next `ops` *read* attempts on `disk` fail with
    /// [`DiskError::Transient`], then the condition clears — a retry
    /// succeeds. Writes are not gated: at this abstraction a transient
    /// write error is indistinguishable from success-after-retry.
    Transient {
        /// The glitching disk.
        disk: usize,
        /// How many reads fail before the condition clears.
        ops: u32,
    },
    /// Element `(disk, index)` becomes an unreadable bad sector — a latent
    /// medium error — until something rewrites it (the rewrite remaps the
    /// sector and heals it).
    LatentSector {
        /// The disk with the bad sector.
        disk: usize,
        /// The unreadable element.
        index: usize,
    },
    /// The next write to `(disk, index)` persists only its first half but
    /// reports success — a torn write, detectable only by scrubbing.
    TornWrite {
        /// The disk tearing the write.
        disk: usize,
        /// The element whose update is torn.
        index: usize,
    },
    /// Once `at_op` element operations have been served, the "process"
    /// crashes: that operation and every later one — element I/O, journal,
    /// checkpoint, fail/replace — returns [`DiskError::Crashed`]. For a
    /// [`FileBackend`] inner, whatever reached the files stays there,
    /// exactly like a real crash; reopening the directory runs recovery.
    CrashAtOp {
        /// Operation count at which the crash fires.
        at_op: u64,
    },
}

/// Deterministic fault injector wrapping any backend: disks fail at fixed
/// operation counts ([`FaultPoint`]) or on demand ([`Fault`]), transient
/// and latent-sector errors surface per the taxonomy, and an optional
/// per-op latency is accumulated so tests can assert slow-path behavior
/// without wall clocks.
pub struct FaultyBackend {
    inner: Box<dyn DiskBackend>,
    schedule: Vec<FaultPoint>,
    ops: u64,
    latency_per_op_ms: f64,
    accumulated_latency_ms: f64,
    /// disk → remaining reads that fail transiently.
    transient: BTreeMap<usize, u32>,
    /// Unreadable `(disk, index)` sectors; cleared by rewrite or replace.
    latent: BTreeSet<(usize, usize)>,
    /// `(disk, index)` whose next write is torn; fires once.
    torn: BTreeSet<(usize, usize)>,
    crash_at: Option<u64>,
    crashed: bool,
}

impl std::fmt::Debug for FaultyBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyBackend")
            .field("inner", &self.inner.kind())
            .field("schedule", &self.schedule)
            .field("ops", &self.ops)
            .finish()
    }
}

impl FaultyBackend {
    /// Wraps `inner`, failing the scheduled disks as operations accrue.
    pub fn new(inner: Box<dyn DiskBackend>, schedule: Vec<FaultPoint>) -> Self {
        FaultyBackend {
            inner,
            schedule,
            ops: 0,
            latency_per_op_ms: 0.0,
            accumulated_latency_ms: 0.0,
            transient: BTreeMap::new(),
            latent: BTreeSet::new(),
            torn: BTreeSet::new(),
            crash_at: None,
            crashed: false,
        }
    }

    /// Adds a synthetic service latency per element operation.
    pub fn with_latency(mut self, ms_per_op: f64) -> Self {
        self.latency_per_op_ms = ms_per_op;
        self
    }

    /// Injects `faults` up front (builder form of [`FaultyBackend::inject`]).
    pub fn with_faults(mut self, faults: impl IntoIterator<Item = Fault>) -> Self {
        for f in faults {
            self.inject(f);
        }
        self
    }

    /// Introduces one fault, effective immediately (or, for
    /// [`Fault::Transient`]/[`Fault::TornWrite`]/[`Fault::CrashAtOp`], at
    /// the triggering operation).
    pub fn inject(&mut self, fault: Fault) {
        match fault {
            Fault::Dead { disk } => {
                let _ = self.inner.fail(disk);
            }
            Fault::Transient { disk, ops } => {
                if ops > 0 {
                    *self.transient.entry(disk).or_insert(0) += ops;
                }
            }
            Fault::LatentSector { disk, index } => {
                self.latent.insert((disk, index));
            }
            Fault::TornWrite { disk, index } => {
                self.torn.insert((disk, index));
            }
            Fault::CrashAtOp { at_op } => {
                self.crash_at = Some(at_op);
            }
        }
    }

    /// True once a [`Fault::CrashAtOp`] has fired: the simulated process
    /// is dead and every operation errors.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// "Restarts the process" after a simulated crash: operations are
    /// served again, over whatever state the crash left behind. (For a
    /// [`FileBackend`] inner, prefer reopening the directory — that also
    /// runs journal recovery.)
    pub fn clear_crash(&mut self) {
        self.crashed = false;
        self.crash_at = None;
    }

    /// Total synthetic latency accumulated so far.
    pub fn accumulated_latency_ms(&self) -> f64 {
        self.accumulated_latency_ms
    }

    /// Operations (reads + writes) served or rejected so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The wrapped backend (for post-crash inspection in tests).
    pub fn inner(&self) -> &dyn DiskBackend {
        self.inner.as_ref()
    }

    fn tick(&mut self) -> Result<(), DiskError> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        self.ops += 1;
        self.accumulated_latency_ms += self.latency_per_op_ms;
        if self.crash_at.is_some_and(|at| self.ops >= at) {
            self.crashed = true;
            return Err(DiskError::Crashed);
        }
        let due: Vec<usize> = self
            .schedule
            .iter()
            .filter(|p| p.at_op <= self.ops)
            .map(|p| p.disk)
            .collect();
        self.schedule.retain(|p| p.at_op > self.ops);
        for disk in due {
            let _ = self.inner.fail(disk);
        }
        Ok(())
    }

    fn guard_crash(&self) -> Result<(), DiskError> {
        if self.crashed {
            Err(DiskError::Crashed)
        } else {
            Ok(())
        }
    }
}

impl DiskBackend for FaultyBackend {
    fn disks(&self) -> usize {
        self.inner.disks()
    }

    fn element_size(&self) -> usize {
        self.inner.element_size()
    }

    fn elements_per_disk(&self) -> usize {
        self.inner.elements_per_disk()
    }

    fn read(&mut self, disk: usize, index: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        self.tick()?;
        if !self.inner.is_failed(disk) {
            if let Some(n) = self.transient.get_mut(&disk) {
                *n -= 1;
                if *n == 0 {
                    self.transient.remove(&disk);
                }
                return Err(DiskError::Transient { disk });
            }
            if self.latent.contains(&(disk, index)) {
                return Err(DiskError::LatentSector { disk, index });
            }
        }
        self.inner.read(disk, index, buf)
    }

    fn write(&mut self, disk: usize, index: usize, data: &[u8]) -> Result<(), DiskError> {
        self.tick()?;
        if self.torn.remove(&(disk, index)) && !self.inner.is_failed(disk) {
            // Persist only the first half, report success: the classic
            // torn write. The physical write did land, so a latent sector
            // at this address is remapped (healed) all the same.
            let es = self.inner.element_size();
            let mut cur = vec![0u8; es];
            self.inner.read(disk, index, &mut cur)?;
            cur[..es / 2].copy_from_slice(&data[..es / 2]);
            self.inner.write(disk, index, &cur)?;
            self.latent.remove(&(disk, index));
            return Ok(());
        }
        let r = self.inner.write(disk, index, data);
        if r.is_ok() {
            // A successful rewrite remaps a bad sector.
            self.latent.remove(&(disk, index));
        }
        r
    }

    /// Batched submission stays strictly sequential and per-request:
    /// every entry goes through this wrapper's own `read`/`write` (one
    /// `tick` each, faults applied individually), never the inner
    /// backend's parallel path. This pins two properties chaos depends
    /// on: op-count-triggered faults (`FaultPoint`, `CrashAtOp`) fire at
    /// the same request whether the caller batched or not, and a fault
    /// on one entry fails exactly that entry.
    fn submit_batch(&mut self, batch: &[DiskRequest]) -> Vec<DiskCompletion> {
        batch
            .iter()
            .map(|req| match req {
                DiskRequest::Read { disk, index } => {
                    let mut buf = vec![0u8; self.element_size()];
                    self.read(*disk, *index, &mut buf).map(|()| Some(buf))
                }
                DiskRequest::Write { disk, index, data } => {
                    self.write(*disk, *index, data).map(|()| None)
                }
            })
            .collect()
    }

    fn fail(&mut self, disk: usize) -> Result<(), DiskError> {
        self.guard_crash()?;
        self.inner.fail(disk)
    }

    fn replace(&mut self, disk: usize) -> Result<(), DiskError> {
        self.guard_crash()?;
        // A replaced disk is healthy again; drop any pending fault for it
        // (the schedule described the old spindle).
        self.schedule.retain(|p| p.disk != disk);
        self.transient.remove(&disk);
        self.latent.retain(|&(d, _)| d != disk);
        self.torn.retain(|&(d, _)| d != disk);
        self.inner.replace(disk)
    }

    fn is_failed(&self, disk: usize) -> bool {
        self.inner.is_failed(disk)
    }

    fn kind(&self) -> &'static str {
        "faulty"
    }

    fn journal_begin(&mut self, entries: &[JournalEntry]) -> Result<(), DiskError> {
        self.guard_crash()?;
        self.inner.journal_begin(entries)
    }

    fn journal_commit(&mut self) -> Result<(), DiskError> {
        self.guard_crash()?;
        self.inner.journal_commit()
    }

    fn save_checkpoint(&mut self, cp: Option<&RebuildCheckpoint>) -> Result<(), DiskError> {
        self.guard_crash()?;
        self.inner.save_checkpoint(cp)
    }

    fn load_checkpoint(&self) -> Option<RebuildCheckpoint> {
        self.inner.load_checkpoint()
    }

    fn as_faulty_mut(&mut self) -> Option<&mut FaultyBackend> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// VolumeMeta
// ---------------------------------------------------------------------------

/// The `volume.meta` format version this build reads and writes.
pub const VOLUME_META_VERSION: usize = 1;

/// Volume-level metadata persisted next to a [`FileBackend`]'s disk files
/// (`volume.meta`), so `hvraid fsck`/reopen can rebuild the same
/// code + addressing without re-deriving them from the shape. Also carries
/// the rebuild checkpoint, so a crash mid-rebuild resumes where it left
/// off instead of restarting from stripe 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeMeta {
    /// Code name as registered in the CLI registry (e.g. `"hv"`).
    pub code: String,
    /// The code's prime parameter.
    pub p: usize,
    /// Stripes in the volume.
    pub stripes: usize,
    /// Element size in bytes.
    pub element_size: usize,
    /// Whether stripe rotation is enabled.
    pub rotate: bool,
    /// In-flight background rebuild, if one was interrupted.
    pub rebuild_checkpoint: Option<RebuildCheckpoint>,
}

fn meta_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

impl VolumeMeta {
    /// Writes `volume.meta` into `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let mut body = format!(
            "version={VOLUME_META_VERSION}\ncode={}\np={}\nstripes={}\nelement_size={}\nrotate={}\n",
            self.code, self.p, self.stripes, self.element_size, self.rotate
        );
        if let Some(cp) = &self.rebuild_checkpoint {
            body.push_str(&format!("rebuild_checkpoint={}\n", cp.encode()));
        }
        fs::write(dir.as_ref().join("volume.meta"), body)
    }

    /// Reads and validates `volume.meta` from `dir`.
    ///
    /// # Errors
    ///
    /// Every malformation gets a descriptive [`std::io::ErrorKind::InvalidData`]
    /// error naming the offending field and value: unknown/future format
    /// versions, missing fields, non-numeric or out-of-range numbers, a
    /// `rotate` that is neither `true` nor `false`, and an undecodable
    /// rebuild checkpoint.
    pub fn load(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let body = fs::read_to_string(dir.as_ref().join("volume.meta"))?;
        let raw = |key: &str| -> Option<String> {
            body.lines()
                .find_map(|l| l.strip_prefix(key)?.strip_prefix('='))
                .map(|v| v.trim().to_string())
        };
        // Files written before versioning carry no `version` line; they
        // are exactly the version-1 field set, so absence means 1.
        let version = match raw("version") {
            None => VOLUME_META_VERSION,
            Some(v) => v.parse::<usize>().map_err(|_| {
                meta_err(format!("volume.meta: version {v:?} is not a number"))
            })?,
        };
        if version != VOLUME_META_VERSION {
            return Err(meta_err(format!(
                "volume.meta: unsupported format version {version} \
                 (this build understands version {VOLUME_META_VERSION})"
            )));
        }
        let field = |key: &str| -> std::io::Result<String> {
            raw(key).ok_or_else(|| meta_err(format!("volume.meta: missing field {key}")))
        };
        let num = |key: &str, min: usize| -> std::io::Result<usize> {
            let v = field(key)?;
            let n: usize = v.parse().map_err(|_| {
                meta_err(format!("volume.meta: field {key}={v:?} is not a number"))
            })?;
            if n < min {
                return Err(meta_err(format!(
                    "volume.meta: field {key}={n} is out of range (minimum {min})"
                )));
            }
            Ok(n)
        };
        let rotate = match field("rotate")?.as_str() {
            "true" => true,
            "false" => false,
            other => {
                return Err(meta_err(format!(
                    "volume.meta: field rotate={other:?} must be true or false"
                )))
            }
        };
        let rebuild_checkpoint = match raw("rebuild_checkpoint") {
            None => None,
            Some(v) => Some(RebuildCheckpoint::decode(&v).ok_or_else(|| {
                meta_err(format!(
                    "volume.meta: rebuild_checkpoint={v:?} is not disks@next_stripe"
                ))
            })?),
        };
        Ok(VolumeMeta {
            code: field("code")?,
            p: num("p", 2)?,
            stripes: num("stripes", 1)?,
            element_size: num("element_size", 1)?,
            rotate,
            rebuild_checkpoint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &mut dyn DiskBackend) {
        let es = backend.element_size();
        let payload: Vec<u8> = (0..es as u8).collect();
        backend.write(1, 3, &payload).unwrap();
        let mut buf = vec![0u8; es];
        backend.read(1, 3, &mut buf).unwrap();
        assert_eq!(buf, payload);
        // Untouched elements stay zero.
        backend.read(0, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_backend_roundtrip_and_fault() {
        let mut b = MemBackend::new(4, 8, 16);
        roundtrip(&mut b);
        b.fail(1).unwrap();
        assert!(b.is_failed(1));
        let mut buf = [0u8; 16];
        assert_eq!(b.read(1, 3, &mut buf), Err(DiskError::DiskFailed { disk: 1 }));
        b.replace(1).unwrap();
        b.read(1, 3, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0), "spare must come up blank");
    }

    #[test]
    fn mem_backend_rejects_bad_addresses() {
        let mut b = MemBackend::new(2, 4, 8);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(5, 0, &mut buf), Err(DiskError::NoSuchDisk { disk: 5 }));
        assert_eq!(b.read(0, 99, &mut buf), Err(DiskError::Io { disk: 0 }));
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("hvraid-fb-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut b = FileBackend::create(&dir, 3, 4, 8).unwrap();
            roundtrip(&mut b);
            b.fail(2).unwrap();
        }
        {
            let mut b = FileBackend::open(&dir).unwrap();
            assert_eq!(b.disks(), 3);
            assert_eq!(b.elements_per_disk(), 4);
            assert_eq!(b.element_size(), 8);
            assert!(b.is_failed(2), "failure marker must survive reopen");
            let mut buf = [0u8; 8];
            b.read(1, 3, &mut buf).unwrap();
            assert_eq!(buf.to_vec(), (0..8u8).collect::<Vec<_>>());
            b.replace(2).unwrap();
            assert!(!b.is_failed(2));
        }
        let b = FileBackend::open(&dir).unwrap();
        assert!(!b.is_failed(2), "replacement must clear the marker");
        let _ = fs::remove_dir_all(&dir);
    }

    /// A mixed batch touching several disks, including one stale read
    /// that a same-batch earlier write must satisfy.
    fn sample_batch(es: usize) -> Vec<DiskRequest> {
        vec![
            DiskRequest::Write { disk: 0, index: 1, data: vec![0xAA; es] },
            DiskRequest::Write { disk: 2, index: 0, data: vec![0xBB; es] },
            DiskRequest::Read { disk: 0, index: 1 },
            DiskRequest::Read { disk: 1, index: 3 },
            DiskRequest::Read { disk: 2, index: 0 },
        ]
    }

    fn assert_batch_completions(results: &[DiskCompletion], es: usize) {
        assert_eq!(results.len(), 5);
        assert_eq!(results[0], Ok(None));
        assert_eq!(results[1], Ok(None));
        assert_eq!(results[2], Ok(Some(vec![0xAA; es])), "read must see same-batch write");
        assert_eq!(results[3], Ok(Some(vec![0u8; es])));
        assert_eq!(results[4], Ok(Some(vec![0xBB; es])));
    }

    #[test]
    fn submit_batch_default_matches_singles() {
        let mut b = MemBackend::new(3, 4, 8);
        let results = b.submit_batch(&sample_batch(8));
        assert_batch_completions(&results, 8);
        // Per-request failure isolation: a bad address fails alone.
        let results = b.submit_batch(&[
            DiskRequest::Read { disk: 9, index: 0 },
            DiskRequest::Read { disk: 0, index: 1 },
        ]);
        assert_eq!(results[0], Err(DiskError::NoSuchDisk { disk: 9 }));
        assert_eq!(results[1], Ok(Some(vec![0xAA; 8])));
    }

    #[test]
    fn submit_batch_file_parallel_matches_sequential() {
        let dir = std::env::temp_dir().join(format!("hvraid-sb-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut b = FileBackend::create(&dir, 3, 4, 8).unwrap();
        for threads in [1usize, 2, 4] {
            b.set_io_threads(threads);
            let results = b.submit_batch(&sample_batch(8));
            assert_batch_completions(&results, 8);
        }
        // Failed disks and bad addresses complete per-request.
        b.fail(1).unwrap();
        b.set_io_threads(4);
        let results = b.submit_batch(&[
            DiskRequest::Read { disk: 1, index: 0 },
            DiskRequest::Read { disk: 0, index: 99 },
            DiskRequest::Read { disk: 2, index: 0 },
        ]);
        assert_eq!(results[0], Err(DiskError::DiskFailed { disk: 1 }));
        assert_eq!(results[1], Err(DiskError::Io { disk: 0 }));
        assert_eq!(results[2], Ok(Some(vec![0xBB; 8])));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_batch_faulty_ticks_per_request() {
        // A crash at op 3 must fail the 3rd batched request and every
        // later one, while earlier entries complete — batching must not
        // change where op-count faults land.
        let mut b = FaultyBackend::new(Box::new(MemBackend::new(3, 4, 8)), Vec::new())
            .with_faults([Fault::CrashAtOp { at_op: 3 }]);
        let results = b.submit_batch(&sample_batch(8));
        assert_eq!(results[0], Ok(None));
        assert_eq!(results[1], Ok(None));
        assert_eq!(results[2], Err(DiskError::Crashed));
        assert_eq!(results[3], Err(DiskError::Crashed));
        assert_eq!(results[4], Err(DiskError::Crashed));

        // Transients hit individual reads inside a batch.
        let mut b = FaultyBackend::new(Box::new(MemBackend::new(3, 4, 8)), Vec::new())
            .with_faults([Fault::Transient { disk: 1, ops: 1 }]);
        let results = b.submit_batch(&[
            DiskRequest::Read { disk: 1, index: 0 },
            DiskRequest::Read { disk: 1, index: 0 },
        ]);
        assert_eq!(results[0], Err(DiskError::Transient { disk: 1 }));
        assert_eq!(results[1], Ok(Some(vec![0u8; 8])));
        assert_eq!(b.ops(), 2);
    }

    #[test]
    fn faulty_op_count_schedules_fire_identically_singly_and_batched() {
        // The FaultyBackend deliberately keeps the strictly sequential
        // default submit_batch so its op counter — the clock every
        // schedule is expressed in — advances identically whether the
        // caller issues requests one by one or as a batch. Sweep the
        // trigger across every position of a 5-request workload, with a
        // FaultPoint (disk death), a CrashAtOp, and sector-level faults
        // in the mix, and require bit-identical outcomes.
        let schedules: Vec<(Vec<FaultPoint>, Vec<Fault>)> = (1..=6)
            .flat_map(|at| {
                vec![
                    (vec![FaultPoint { at_op: at, disk: 0 }], vec![]),
                    (vec![], vec![Fault::CrashAtOp { at_op: at }]),
                ]
            })
            .chain([
                (vec![], vec![Fault::Transient { disk: 1, ops: 1 }]),
                (vec![], vec![Fault::LatentSector { disk: 1, index: 3 }]),
                (
                    vec![FaultPoint { at_op: 4, disk: 2 }],
                    vec![Fault::Transient { disk: 0, ops: 2 }],
                ),
            ])
            .collect();
        for (points, faults) in schedules {
            let make = || {
                FaultyBackend::new(Box::new(MemBackend::new(3, 4, 8)), points.clone())
                    .with_faults(faults.iter().copied())
            };
            let batch = sample_batch(8);

            let mut singly = make();
            let single_results: Vec<DiskCompletion> = batch
                .iter()
                .map(|req| match req {
                    DiskRequest::Read { disk, index } => {
                        let mut buf = vec![0u8; 8];
                        singly.read(*disk, *index, &mut buf).map(|()| Some(buf))
                    }
                    DiskRequest::Write { disk, index, data } => {
                        singly.write(*disk, *index, data).map(|()| None)
                    }
                })
                .collect();

            let mut batched = make();
            let batch_results = batched.submit_batch(&batch);

            let label = format!("points {points:?} faults {faults:?}");
            assert_eq!(single_results, batch_results, "{label}");
            assert_eq!(singly.ops(), batched.ops(), "{label}: op clocks diverged");
            assert_eq!(singly.crashed(), batched.crashed(), "{label}");
            for disk in 0..3 {
                assert_eq!(singly.is_failed(disk), batched.is_failed(disk), "{label}");
            }
            // Whatever reached the disks must match too: restart both
            // "processes" and compare every element.
            singly.clear_crash();
            batched.clear_crash();
            for disk in 0..3 {
                for index in 0..4 {
                    let mut a = vec![0u8; 8];
                    let mut b = vec![0u8; 8];
                    let ra = singly.read(disk, index, &mut a);
                    let rb = batched.read(disk, index, &mut b);
                    assert_eq!(ra, rb, "{label}: ({disk},{index})");
                    assert_eq!(a, b, "{label}: bytes at ({disk},{index})");
                }
            }
        }
    }

    #[test]
    fn faulty_backend_fails_on_schedule() {
        let inner = MemBackend::new(3, 4, 8);
        let mut b = FaultyBackend::new(
            Box::new(inner),
            vec![FaultPoint { at_op: 2, disk: 1 }],
        )
        .with_latency(0.5);
        let mut buf = [0u8; 8];
        b.read(1, 0, &mut buf).unwrap(); // op 1: fine
        assert!(!b.is_failed(1));
        assert_eq!(b.read(1, 0, &mut buf), Err(DiskError::DiskFailed { disk: 1 }));
        assert!(b.is_failed(1));
        // Other disks keep serving.
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(b.ops(), 3);
        assert!((b.accumulated_latency_ms() - 1.5).abs() < 1e-12);
        // Replacement clears both the failure and any stale schedule.
        b.replace(1).unwrap();
        b.read(1, 0, &mut buf).unwrap();
    }

    #[test]
    fn faulty_backend_transient_clears_after_n_reads() {
        let mut b = FaultyBackend::new(Box::new(MemBackend::new(3, 4, 8)), Vec::new())
            .with_faults([Fault::Transient { disk: 0, ops: 2 }]);
        let payload = [7u8; 8];
        // Writes are never gated by transients.
        b.write(0, 1, &payload).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.read(0, 1, &mut buf), Err(DiskError::Transient { disk: 0 }));
        assert_eq!(b.read(0, 1, &mut buf), Err(DiskError::Transient { disk: 0 }));
        b.read(0, 1, &mut buf).unwrap();
        assert_eq!(buf, payload);
    }

    #[test]
    fn faulty_backend_latent_sector_heals_on_rewrite() {
        let mut b = FaultyBackend::new(Box::new(MemBackend::new(3, 4, 8)), Vec::new());
        b.inject(Fault::LatentSector { disk: 1, index: 2 });
        let mut buf = [0u8; 8];
        assert_eq!(
            b.read(1, 2, &mut buf),
            Err(DiskError::LatentSector { disk: 1, index: 2 })
        );
        // Neighboring sectors are unaffected.
        b.read(1, 1, &mut buf).unwrap();
        // Rewriting the element remaps the sector.
        b.write(1, 2, &[9u8; 8]).unwrap();
        b.read(1, 2, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 8]);
    }

    #[test]
    fn faulty_backend_torn_write_persists_half() {
        let mut b = FaultyBackend::new(Box::new(MemBackend::new(3, 4, 8)), Vec::new());
        b.write(2, 0, &[1u8; 8]).unwrap();
        b.inject(Fault::TornWrite { disk: 2, index: 0 });
        b.write(2, 0, &[5u8; 8]).unwrap(); // reported as success…
        let mut buf = [0u8; 8];
        b.read(2, 0, &mut buf).unwrap();
        assert_eq!(buf, [5, 5, 5, 5, 1, 1, 1, 1], "…but only half landed");
        // The tear fires once; the next write is whole.
        b.write(2, 0, &[6u8; 8]).unwrap();
        b.read(2, 0, &mut buf).unwrap();
        assert_eq!(buf, [6u8; 8]);
    }

    #[test]
    fn faulty_backend_crash_gates_everything() {
        let mut b = FaultyBackend::new(Box::new(MemBackend::new(3, 4, 8)), Vec::new())
            .with_faults([Fault::CrashAtOp { at_op: 3 }]);
        let mut buf = [0u8; 8];
        b.read(0, 0, &mut buf).unwrap(); // op 1
        b.write(0, 0, &[1u8; 8]).unwrap(); // op 2
        assert!(!b.crashed());
        assert_eq!(b.read(0, 0, &mut buf), Err(DiskError::Crashed)); // op 3
        assert!(b.crashed());
        assert_eq!(b.write(0, 1, &[2u8; 8]), Err(DiskError::Crashed));
        assert_eq!(b.journal_begin(&[]), Err(DiskError::Crashed));
        assert_eq!(b.journal_commit(), Err(DiskError::Crashed));
        assert_eq!(b.save_checkpoint(None), Err(DiskError::Crashed));
        assert_eq!(b.replace(0), Err(DiskError::Crashed));
        b.clear_crash();
        b.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8], "pre-crash write survived the crash");
    }

    #[test]
    fn file_backend_journal_rolls_back_on_reopen() {
        let dir = std::env::temp_dir().join(format!("hvraid-jr-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut b = FileBackend::create(&dir, 3, 4, 8).unwrap();
            b.write(0, 1, &[1u8; 8]).unwrap();
            b.write(1, 2, &[2u8; 8]).unwrap();
            // Journal the pre-images, then "crash" after overwriting both
            // elements but before committing the journal.
            b.journal_begin(&[
                JournalEntry { disk: 0, index: 1, data: vec![1u8; 8] },
                JournalEntry { disk: 1, index: 2, data: vec![2u8; 8] },
            ])
            .unwrap();
            b.write(0, 1, &[9u8; 8]).unwrap();
            b.write(1, 2, &[9u8; 8]).unwrap();
            // …process dies here: no journal_commit.
        }
        {
            let mut b = FileBackend::open(&dir).unwrap();
            assert_eq!(
                b.recovered_journal(),
                Some(JournalRecovery::RolledBack { elements: 2 })
            );
            let mut buf = [0u8; 8];
            b.read(0, 1, &mut buf).unwrap();
            assert_eq!(buf, [1u8; 8]);
            b.read(1, 2, &mut buf).unwrap();
            assert_eq!(buf, [2u8; 8]);
        }
        // Second open: journal is gone, nothing recovered.
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.recovered_journal(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_discards_torn_journal() {
        let dir = std::env::temp_dir().join(format!("hvraid-tj-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut b = FileBackend::create(&dir, 3, 4, 8).unwrap();
            b.write(0, 1, &[4u8; 8]).unwrap();
        }
        // A journal that lost its tail (crash mid-journal-write without
        // the rename barrier) must not be applied.
        let entries = [JournalEntry { disk: 0, index: 1, data: vec![0u8; 8] }];
        let mut bytes = encode_journal(&entries);
        bytes.truncate(bytes.len() - 3);
        fs::write(FileBackend::journal_path(&dir), bytes).unwrap();
        let mut b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.recovered_journal(), Some(JournalRecovery::DiscardedTorn));
        let mut buf = [0u8; 8];
        b.read(0, 1, &mut buf).unwrap();
        assert_eq!(buf, [4u8; 8], "torn journal must not clobber data");
        assert!(!FileBackend::journal_path(&dir).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_checkpoint_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("hvraid-cp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cp = RebuildCheckpoint { disks: vec![0, 3], next_stripe: 17 };
        {
            let mut b = FileBackend::create(&dir, 4, 4, 8).unwrap();
            assert_eq!(b.load_checkpoint(), None);
            b.save_checkpoint(Some(&cp)).unwrap();
            assert_eq!(b.load_checkpoint(), Some(cp.clone()));
        }
        {
            let mut b = FileBackend::open(&dir).unwrap();
            assert_eq!(b.load_checkpoint(), Some(cp));
            b.save_checkpoint(None).unwrap();
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.load_checkpoint(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn volume_meta_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hvraid-vm-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut meta = VolumeMeta {
            code: "hv".into(),
            p: 7,
            stripes: 4,
            element_size: 16,
            rotate: true,
            rebuild_checkpoint: None,
        };
        meta.save(&dir).unwrap();
        assert_eq!(VolumeMeta::load(&dir).unwrap(), meta);
        // The rebuild-checkpoint field round-trips too.
        meta.rebuild_checkpoint =
            Some(RebuildCheckpoint { disks: vec![2, 5], next_stripe: 9 });
        meta.save(&dir).unwrap();
        assert_eq!(VolumeMeta::load(&dir).unwrap(), meta);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn volume_meta_checkpoint_shared_with_backend_hooks() {
        // The volume writes volume.meta; the backend's save_checkpoint
        // edits only the checkpoint line. Both views must agree.
        let dir = std::env::temp_dir().join(format!("hvraid-vmcp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut b = FileBackend::create(&dir, 4, 4, 8).unwrap();
        let meta = VolumeMeta {
            code: "hv".into(),
            p: 5,
            stripes: 4,
            element_size: 8,
            rotate: false,
            rebuild_checkpoint: None,
        };
        meta.save(&dir).unwrap();
        let cp = RebuildCheckpoint { disks: vec![1], next_stripe: 3 };
        b.save_checkpoint(Some(&cp)).unwrap();
        let loaded = VolumeMeta::load(&dir).unwrap();
        assert_eq!(loaded.rebuild_checkpoint, Some(cp));
        assert_eq!(loaded.code, meta.code, "other fields must be preserved");
        b.save_checkpoint(None).unwrap();
        assert_eq!(VolumeMeta::load(&dir).unwrap(), meta);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn volume_meta_rejects_bad_files() {
        let dir = std::env::temp_dir().join(format!("hvraid-vmbad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let write = |body: &str| fs::write(dir.join("volume.meta"), body).unwrap();
        let load_err = || VolumeMeta::load(&dir).unwrap_err().to_string();

        write("version=2\ncode=hv\np=5\nstripes=4\nelement_size=8\nrotate=true\n");
        assert!(load_err().contains("unsupported format version 2"), "{}", load_err());

        write("version=1\ncode=hv\np=banana\nstripes=4\nelement_size=8\nrotate=true\n");
        assert!(load_err().contains("p=\"banana\""), "{}", load_err());

        write("version=1\ncode=hv\np=0\nstripes=4\nelement_size=8\nrotate=true\n");
        assert!(load_err().contains("out of range"), "{}", load_err());

        write("version=1\ncode=hv\np=5\nstripes=4\nelement_size=8\nrotate=maybe\n");
        assert!(load_err().contains("must be true or false"), "{}", load_err());

        write("version=1\ncode=hv\np=5\nstripes=4\nelement_size=8\n");
        assert!(load_err().contains("missing field rotate"), "{}", load_err());

        write(
            "version=1\ncode=hv\np=5\nstripes=4\nelement_size=8\nrotate=true\n\
             rebuild_checkpoint=oops\n",
        );
        assert!(load_err().contains("rebuild_checkpoint"), "{}", load_err());

        // Legacy pre-versioning files (no version line) still load.
        write("code=hv\np=5\nstripes=4\nelement_size=8\nrotate=true\n");
        assert!(VolumeMeta::load(&dir).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}
