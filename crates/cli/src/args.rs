//! Minimal flag parsing for the CLI (kept dependency-free on purpose).

use std::collections::BTreeMap;

/// A parsed command line: subcommand, `--key value` flags, and positionals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Parsed {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// `--key value` pairs.
    pub flags: BTreeMap<String, String>,
    /// Remaining positional arguments.
    pub positionals: Vec<String>,
}

/// Parses an argument vector (without the program name).
///
/// A `--flag` followed by another flag (or by nothing) is a boolean
/// switch and parses as `true`, so `lint --all` and `lint --all true`
/// are equivalent.
///
/// # Errors
///
/// Returns a message if no subcommand was given.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix("--") {
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            out.flags.insert(key.to_string(), value);
        } else if out.command.is_empty() {
            out.command = arg;
        } else {
            out.positionals.push(arg);
        }
    }
    if out.command.is_empty() {
        return Err("no subcommand given".to_string());
    }
    Ok(out)
}

impl Parsed {
    /// A flag parsed as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns a message if absent.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let p = parse(sv(&["layout", "--code", "hv", "--p", "13", "extra"])).unwrap();
        assert_eq!(p.command, "layout");
        assert_eq!(p.flags.get("code").unwrap(), "hv");
        assert_eq!(p.get_or("p", 7usize).unwrap(), 13);
        assert_eq!(p.positionals, vec!["extra"]);
    }

    #[test]
    fn defaults_and_requirements() {
        let p = parse(sv(&["check"])).unwrap();
        assert_eq!(p.get_or("p", 7usize).unwrap(), 7);
        assert!(p.require("code").unwrap_err().contains("--code"));
    }

    #[test]
    fn error_cases() {
        assert!(parse(sv(&[])).is_err());
        let p = parse(sv(&["x", "--p", "nope"])).unwrap();
        assert!(p.get_or("p", 1usize).is_err());
    }

    #[test]
    fn valueless_flags_are_boolean_switches() {
        let p = parse(sv(&["lint", "--all", "--code", "hv"])).unwrap();
        assert!(p.get_or("all", false).unwrap());
        assert_eq!(p.flags.get("code").unwrap(), "hv");
        let trailing = parse(sv(&["lint", "--json"])).unwrap();
        assert!(trailing.get_or("json", false).unwrap());
    }
}
