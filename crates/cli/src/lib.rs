//! Library backing the `hvraid` command-line tool: the code registry,
//! argument parsing, and each subcommand's implementation (kept in the
//! library so they are unit-testable without spawning processes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod registry;
