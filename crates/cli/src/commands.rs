//! Subcommand implementations. Each returns the text to print so tests can
//! assert on output without spawning processes.

use std::sync::Arc;

use disk_sim::{DiskArray, DiskProfile};
use raid_array::mttr::estimate_rebuild;
use raid_array::reliability::estimate_mttdl;
use raid_array::{replay_write_trace, RaidVolume};
use raid_core::plan::update::update_complexity;
use raid_core::schedule::double_failure_schedule;
use raid_core::{invariants, ArrayCode};
use raid_workloads::textio::parse_trace;

use crate::args::Parsed;
use crate::registry::build;

/// CLI usage text.
pub const USAGE: &str = "hvraid — RAID-6 array-code toolbox (HV Code reproduction)

usage: hvraid <command> [flags]

commands:
  layout    --code <name> [--p 7] [--format spec]
                                           print the stripe layout (spec = loadable dump)
  check     --code <name> [--p 7] | --spec <file>
                                           verify the MDS property exhaustively
  info      --code <name> [--p 7]          structural summary (Table III style)
  demo      [--p 7] [--dot true]           HV double-failure repair walk-through
                                           (--dot emits Graphviz of the chains)
  replay    --code <name> --trace <file> [--p 7] [--stripes 8]
                                           replay an (S,L,F) trace file
  estimate  --code <name> [--p 13] [--stripes 64] [--mttf 1000000]
                                           rebuild times and MTTDL
  batch     --code <name> [--p 13] [--stripes 256] [--element 4096] [--threads 1]
                                           encode + rebuild a stripe batch, timed

codes: hv rdp evenodd xcode hcode hdp pcode liberation";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns a user-facing message on bad input.
pub fn run(parsed: &Parsed) -> Result<String, String> {
    match parsed.command.as_str() {
        "layout" => layout(parsed),
        "check" => check(parsed),
        "info" => info(parsed),
        "demo" => demo(parsed),
        "replay" => replay(parsed),
        "estimate" => estimate(parsed),
        "batch" => batch(parsed),
        "help" | "--help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn code_from(parsed: &Parsed, default_p: usize) -> Result<(Arc<dyn ArrayCode>, usize), String> {
    let name = parsed.require("code")?;
    let p = parsed.get_or("p", default_p)?;
    Ok((build(name, p)?, p))
}

fn layout(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 7)?;
    if parsed.get_or("format", String::new())? == "spec" {
        // Machine-readable dump, loadable by `check --spec`.
        return Ok(raid_core::spec::format_layout(code.layout()));
    }
    Ok(format!(
        "{} (p = {p}, {} disks, {} rows)\nlegend: . data, H/V/D/A/X parity\n\n{}",
        code.name(),
        code.disks(),
        code.rows(),
        code.layout().render_ascii()
    ))
}

fn check(parsed: &Parsed) -> Result<String, String> {
    // Either a registered code (--code/--p) or a hand-written layout spec
    // file (--spec): the verifier is the same.
    let (name, owned_layout);
    let layout: &raid_core::Layout = if let Some(path) = parsed.flags.get("spec") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        owned_layout = raid_core::spec::parse_layout(&text).map_err(|e| e.to_string())?;
        name = format!("layout spec {path}");
        &owned_layout
    } else {
        let (code, p) = code_from(parsed, 7)?;
        name = format!("{} at p = {p}", code.name());
        owned_layout = code.layout().clone();
        &owned_layout
    };
    let singles = invariants::all_single_failures_decodable(layout);
    let pair = invariants::find_undecodable_pair(layout);
    let verdict = match (singles, pair) {
        (true, None) => "MDS: tolerates any two simultaneous disk failures ✔".to_string(),
        (false, _) => "BROKEN: some single-disk failure is unrecoverable ✘".to_string(),
        (_, Some((a, b))) => format!("NOT MDS: disks ({a},{b}) unrecoverable ✘"),
    };
    Ok(format!(
        "{name}: checked {} disk pairs\n{verdict}",
        layout.cols() * (layout.cols() - 1) / 2,
    ))
}

fn info(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 7)?;
    let layout = code.layout();
    let n = layout.cols();
    let mut min_chains = usize::MAX;
    let mut lc_sum = 0usize;
    let mut pairs = 0usize;
    for f1 in 0..n {
        for f2 in (f1 + 1)..n {
            let sched = double_failure_schedule(layout, f1, f2)
                .map_err(|e| format!("{e} — is the construction broken?"))?;
            min_chains = min_chains.min(sched.num_chains);
            lc_sum += sched.longest_chain;
            pairs += 1;
        }
    }
    let lengths = layout
        .chain_length_histogram()
        .into_iter()
        .map(|(l, c)| format!("{l}×{c}"))
        .collect::<Vec<_>>()
        .join(", ");
    Ok(format!(
        "{} at p = {p}\n\
         disks:                {}\n\
         rows per stripe:      {}\n\
         storage efficiency:   {:.1}%\n\
         update complexity:    {:.2} parity writes per data write\n\
         parity chain lengths: {lengths}\n\
         parities per disk:    {:?}\n\
         recovery chains:      ≥{min_chains} parallel (E[Lc] = {:.2})",
        code.name(),
        n,
        layout.rows(),
        code.storage_efficiency() * 100.0,
        update_complexity(layout),
        invariants::parities_per_column(layout),
        lc_sum as f64 / pairs as f64,
    ))
}

fn demo(parsed: &Parsed) -> Result<String, String> {
    let p = parsed.get_or("p", 7usize)?;
    let dot = parsed.get_or("dot", false)?;
    let code = hv_code::HvCode::new(p).map_err(|e| e.to_string())?;
    if dot {
        // Emit the recovery dependency graph instead of the prose demo.
        let (f1, f2) = (0, code.num_disks() / 2);
        let sched = double_failure_schedule(raid_core::ArrayCode::layout(&code), f1, f2)
            .map_err(|e| e.to_string())?;
        return Ok(sched.to_dot(&format!("HV Code p={p}, disks #{} #{}", f1 + 1, f2 + 1)));
    }
    let mut stripe = raid_core::Stripe::for_layout(raid_core::ArrayCode::layout(&code), 64);
    stripe.fill_data_seeded(raid_core::ArrayCode::layout(&code), 42);
    raid_core::ArrayCode::encode(&code, &mut stripe);
    let pristine = stripe.clone();
    let (f1, f2) = (0, code.num_disks() / 2);
    stripe.erase_col(f1);
    stripe.erase_col(f2);
    let plan = code
        .repair_double_disk(&mut stripe, f1, f2)
        .map_err(|e| e.to_string())?;
    let ok = stripe == pristine;
    let mut out = format!(
        "HV Code p = {p}: disks #{} and #{} failed and repaired via {} parallel chains\n",
        f1 + 1,
        f2 + 1,
        plan.num_chains()
    );
    for (i, chain) in plan.chains().iter().enumerate() {
        let path: Vec<String> = chain
            .iter()
            .map(|s| format!("E[{},{}]", s.cell.row + 1, s.cell.col + 1))
            .collect();
        out.push_str(&format!("  chain {}: {}\n", i + 1, path.join(" -> ")));
    }
    out.push_str(if ok { "recovery byte-exact ✔" } else { "RECOVERY MISMATCH ✘" });
    Ok(out)
}

fn replay(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 7)?;
    let path = parsed.require("trace")?;
    let stripes = parsed.get_or("stripes", 8usize)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = parse_trace(&text).map_err(|e| e.to_string())?;
    let mut volume = RaidVolume::new(Arc::clone(&code), stripes, 64);
    let mut sim = DiskArray::new(volume.disks(), DiskProfile::savvio_10k());
    let out = replay_write_trace(&mut volume, &mut sim, &trace).map_err(|e| e.to_string())?;
    Ok(format!(
        "{} at p = {p}: replayed '{}' ({} patterns)\n\
         total write requests: {}\n\
         load balancing λ:     {:.2}\n\
         mean pattern latency: {:.2} ms (simulated)",
        code.name(),
        trace.name,
        out.patterns,
        out.total_write_requests(),
        out.lambda(),
        out.mean_latency_ms(),
    ))
}

fn estimate(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 13)?;
    let stripes = parsed.get_or("stripes", 64usize)?;
    let mttf = parsed.get_or("mttf", 1_000_000.0f64)?;
    let profile = DiskProfile::savvio_10k();
    let rebuild = estimate_rebuild(code.as_ref(), stripes, profile);
    let mttdl = estimate_mttdl(code.as_ref(), stripes, profile, mttf);
    Ok(format!(
        "{} at p = {p}, {stripes} stripes, 16 MB elements, per-disk MTTF {mttf:.0} h\n\
         single-disk rebuild:  {:.0} ms\n\
         double-disk rebuild:  {:.0} ms\n\
         estimated MTTDL:      {:.2e} hours",
        code.name(),
        rebuild.single_ms,
        rebuild.double_ms,
        mttdl.mttdl_h,
    ))
}

fn batch(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 13)?;
    let stripes = parsed.get_or("stripes", 256usize)?;
    let element = parsed.get_or("element", 4096usize)?;
    let threads = parsed.get_or("threads", 1usize)?;
    let layout = code.layout();
    let mut batch: Vec<raid_core::Stripe> = (0..stripes)
        .map(|i| {
            let mut s = raid_core::Stripe::for_layout(layout, element);
            s.fill_data_seeded(layout, i as u64 + 1);
            s
        })
        .collect();
    let bytes = (stripes * layout.num_data_cells() * element) as f64;
    let mib_s = |secs: f64| bytes / (1 << 20) as f64 / secs;

    let t0 = std::time::Instant::now();
    raid_array::encode_batch(code.as_ref(), &mut batch, threads);
    let encode_s = t0.elapsed().as_secs_f64();

    let lost = [0usize, layout.cols() / 2];
    let t1 = std::time::Instant::now();
    raid_array::rebuild_batch(code.as_ref(), &mut batch, &lost, threads)
        .map_err(|e| e.to_string())?;
    let rebuild_s = t1.elapsed().as_secs_f64();
    let intact = batch.iter().all(|s| code.is_consistent(s));

    Ok(format!(
        "{} at p = {p}: {stripes} stripes × {element} B elements, {threads} thread(s)\n\
         encode:  {:.1} ms ({:.0} MiB/s of data)\n\
         rebuild: {:.1} ms ({:.0} MiB/s of data, disks #{} and #{})\n\
         all stripes consistent after rebuild: {}",
        code.name(),
        encode_s * 1e3,
        mib_s(encode_s),
        rebuild_s * 1e3,
        mib_s(rebuild_s),
        lost[0] + 1,
        lost[1] + 1,
        if intact { "yes ✔" } else { "NO ✘" },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use crate::registry::CODE_NAMES;

    fn run_line(line: &[&str]) -> Result<String, String> {
        run(&parse(line.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn batch_encodes_and_rebuilds() {
        for threads in ["1", "4"] {
            let out = run_line(&[
                "batch", "--code", "hv", "--p", "7", "--stripes", "12", "--element", "64",
                "--threads", threads,
            ])
            .unwrap();
            assert!(out.contains("12 stripes"), "{out}");
            assert!(out.contains("consistent after rebuild: yes"), "{out}");
        }
    }

    #[test]
    fn layout_renders_grid() {
        let out = run_line(&["layout", "--code", "hv", "--p", "7"]).unwrap();
        assert!(out.contains("HV Code"));
        assert!(out.contains(".H.V..\n"));
    }

    #[test]
    fn check_reports_mds() {
        for name in CODE_NAMES {
            let out = run_line(&["check", "--code", name]).unwrap();
            assert!(out.contains("MDS"), "{name}: {out}");
            assert!(out.contains('✔'), "{name}: {out}");
        }
    }

    #[test]
    fn info_summarizes() {
        let out = run_line(&["info", "--code", "hv", "--p", "13"]).unwrap();
        assert!(out.contains("83.3%"));
        assert!(out.contains("2.00 parity writes"));
        assert!(out.contains("≥4 parallel"));
    }

    #[test]
    fn demo_repairs() {
        let out = run_line(&["demo", "--p", "11"]).unwrap();
        assert!(out.contains("4 parallel chains"));
        assert!(out.contains("byte-exact ✔"));
    }

    #[test]
    fn demo_dot_emits_graphviz() {
        let out = run_line(&["demo", "--p", "7", "--dot", "true"]).unwrap();
        assert!(out.starts_with("digraph recovery {"));
        assert_eq!(out.matches("doublecircle").count(), 4);
    }

    #[test]
    fn replay_runs_a_trace_file() {
        let dir = std::env::temp_dir().join("hvraid_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        std::fs::write(&path, "# name: demo\n0 5 3\n10 2 1\n").unwrap();
        let out = run_line(&["replay", "--code", "hv", "--trace", path.to_str().unwrap()])
            .unwrap();
        assert!(out.contains("4 patterns"));
        assert!(out.contains("load balancing"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn estimate_reports_mttdl() {
        let out = run_line(&["estimate", "--code", "hv", "--p", "7", "--stripes", "4"]).unwrap();
        assert!(out.contains("MTTDL"));
        assert!(out.contains("rebuild"));
    }

    #[test]
    fn layout_spec_round_trips_through_check() {
        let spec = run_line(&["layout", "--code", "hv", "--p", "7", "--format", "spec"]).unwrap();
        assert!(spec.starts_with("layout 6 6\n"));
        let dir = std::env::temp_dir().join("hvraid_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hv7.layout");
        std::fs::write(&path, &spec).unwrap();
        let out = run_line(&["check", "--spec", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("MDS"), "{out}");
        assert!(out.contains('✔'), "{out}");

        // A deliberately broken spec (single parity) must be called out.
        let bad = "layout 1 3\nkinds\n..H\nchain H 0,2 = 0,0 0,1\n";
        let bad_path = dir.join("bad.layout");
        std::fs::write(&bad_path, bad).unwrap();
        let out = run_line(&["check", "--spec", bad_path.to_str().unwrap()]).unwrap();
        assert!(out.contains("NOT MDS"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn errors_are_friendly() {
        assert!(run_line(&["bogus"]).unwrap_err().contains("unknown command"));
        assert!(run_line(&["layout"]).unwrap_err().contains("--code"));
        assert!(run_line(&["layout", "--code", "hv", "--p", "9"])
            .unwrap_err()
            .contains("p=9"));
        assert!(run_line(&["help"]).unwrap().contains("usage"));
    }
}
