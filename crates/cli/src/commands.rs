//! Subcommand implementations. Each returns the text to print so tests can
//! assert on output without spawning processes.

use std::sync::Arc;

use disk_sim::{DiskArray, DiskProfile};
use raid_array::mttr::estimate_rebuild;
use raid_array::reliability::estimate_mttdl;
use raid_array::{
    chaos, replay_write_trace, CacheConfig, ChaosConfig, DiskBackend, FileBackend,
    JournalRecovery, MemBackend, RaidVolume, VolumeError, VolumeMeta,
};
use raid_core::plan::update::update_complexity;
use raid_core::schedule::double_failure_schedule;
use raid_core::{invariants, ArrayCode};
use raid_service::{ServerConfig, Service, ServiceConfig};
use raid_workloads::textio::parse_trace;

use crate::args::Parsed;
use crate::registry::build;

/// CLI usage text.
pub const USAGE: &str = "hvraid — RAID-6 array-code toolbox (HV Code reproduction)

usage: hvraid <command> [flags]

commands:
  layout    --code <name> [--p 7] [--format spec]
                                           print the stripe layout (spec = loadable dump)
  check     --code <name> [--p 7] | --spec <file>
                                           verify the MDS property exhaustively
  info      --code <name> [--p 7]          structural summary (Table III style)
  demo      [--p 7] [--dot true]           HV double-failure repair walk-through
                                           (--dot emits Graphviz of the chains)
  replay    --code <name> --trace <file> [--p 7] [--stripes 8] [--cache <stripes>]
                                           replay an (S,L,F) trace file; --cache N
                                           routes writes through an N-stripe
                                           write-back cache and reports the
                                           coalesced flush / eviction counts
  estimate  --code <name> [--p 13] [--stripes 64] [--mttf 1000000]
                                           rebuild times and MTTDL
  batch     --code <name> [--p 13] [--stripes 256] [--element 4096] [--threads 1]
            [--backend mem|file] [--dir <dir>]
                                           encode + rebuild a stripe batch through
                                           the volume pipeline, timed
  volume    --code <name> --dir <dir> [--p 7] [--stripes 8] [--element 64]
                                           full lifecycle on a file-backed volume
                                           (create, write, fail, degraded read,
                                           rebuild) cross-checked byte-for-byte
                                           against an in-memory twin
  fsck      --dir <dir> [--repair true] [--json]
                                           reopen a file-backed volume, report journal
                                           rollbacks and in-flight rebuild checkpoints,
                                           verify parity, optionally rebuild + scrub
                                           (exit 0 clean, 2 repaired, 3 unrecoverable)
  chaos     [--seed N] [--episodes 100] [--backend both|mem] [--dir <dir>]
            [--code hv] [--p 5] [--stripes 4] [--element 16] [--spares 2]
            [--steps 12] [--sweeps true] [--cache true] [--threads 1]
                                           randomized fault-injection campaign (dead
                                           disks, transients, latent sectors, torn
                                           writes, crash-at-every-journal-point sweeps
                                           including crash-with-dirty-cache flushes)
                                           verified against a shadow model; any failure
                                           prints the seed that reproduces it;
                                           --cache false disables the write-back cache;
                                           --threads N pins N stripe partitions and adds
                                           partition flush barriers + a partitioned
                                           encode pass to every episode
  fleet     [--volumes 100] [--hours 336] [--seed 42] [--code hv] [--p 5]
            [--stripes 24] [--element 64] [--spares <volumes/8>]
            [--replenish 24] [--scale 1500] [--qos true] [--json]
                                           seeded fleet reliability campaign:
                                           Weibull disk failures and latent
                                           corruption across --volumes arrays,
                                           shared spare pool (--spares capacity,
                                           --replenish hours to restock), scrub
                                           scheduler, adaptive rebuild-vs-
                                           foreground throttle (--qos false
                                           rebuilds flat-out), measured MTTR fed
                                           back into the MTTDL model; --json is
                                           byte-identical for a fixed seed
  serve     --socket <path> [--code hv] [--p 5] [--stripes 16] [--element 64]
            [--dir <dir>] [--coalesce true] [--queue-depth 256] [--workers 4]
            [--partitions N]
                                           serve the volume as a concurrent block
                                           service on a unix socket (line protocol:
                                           HELLO/READ/WRITE/FLUSH/STATS/QUIT/
                                           SHUTDOWN); --dir persists to a file-backed
                                           volume, reopening an existing one;
                                           --coalesce false dispatches pass-through
                                           (no write merging, cache off); runs until
                                           a client sends SHUTDOWN, then drains,
                                           flushes, and exits
  connect   --socket <path> [--script <file>]
                                           scripted client session against a served
                                           volume (script from --script or stdin, one
                                           verb per line plus EXPECT <hex> to assert
                                           the previous READ); prints the transcript
  stats     --socket <path>                fetch the Prometheus text-format metrics
                                           snapshot from a running server
  lint      [--code <name>] [--p <prime>] [--all] [--json] [--opt]
            [--min-savings <pct>] [--hazards] [--journal] [--schedules]
                                           statically verify compiled plans: symbolic
                                           GF(2) encode proof, optimizer-equivalence
                                           proof, exhaustive single/double erasure MDS
                                           proof, partition-hazard + crash-journal
                                           proofs, paper-table cross-check (default:
                                           every code at p = 5 7 11 13 17); --opt also
                                           reports the XOR-read savings of the plan
                                           optimizer per code, and --min-savings fails
                                           any code saving less than <pct> percent of
                                           the specification's XOR reads; --hazards
                                           itemizes per-partition disk footprints,
                                           --journal itemizes crash-prefix counts,
                                           --schedules exhaustively model-checks the
                                           executor's concurrent protocols

codes: hv rdp evenodd xcode hcode hdp pcode liberation";

/// Dispatches a parsed command line, returning the text to print.
///
/// # Errors
///
/// Returns a user-facing message on bad input.
pub fn run(parsed: &Parsed) -> Result<String, String> {
    run_with_status(parsed).map(|(out, _)| out)
}

/// Dispatches a parsed command line, returning the text to print and the
/// process exit code. Most commands exit 0 on success; `fsck` uses the
/// fsck convention (0 clean, 2 repaired, 3 unrecoverable; operational
/// errors are `Err` and exit 1).
///
/// # Errors
///
/// Returns a user-facing message on bad input.
pub fn run_with_status(parsed: &Parsed) -> Result<(String, u8), String> {
    match parsed.command.as_str() {
        "fsck" => fsck(parsed),
        other => {
            let out = match other {
                "layout" => layout(parsed),
                "check" => check(parsed),
                "info" => info(parsed),
                "demo" => demo(parsed),
                "replay" => replay(parsed),
                "estimate" => estimate(parsed),
                "batch" => batch(parsed),
                "volume" => volume_lifecycle(parsed),
                "chaos" => chaos_campaign(parsed),
                "fleet" => fleet_campaign(parsed),
                "serve" => serve(parsed),
                "connect" => connect(parsed),
                "stats" => stats(parsed),
                "lint" => lint(parsed),
                "help" | "--help" => Ok(USAGE.to_string()),
                _ => Err(format!("unknown command '{other}'\n\n{USAGE}")),
            }?;
            Ok((out, 0))
        }
    }
}

fn code_from(parsed: &Parsed, default_p: usize) -> Result<(Arc<dyn ArrayCode>, usize), String> {
    let name = parsed.require("code")?;
    let p = parsed.get_or("p", default_p)?;
    Ok((build(name, p)?, p))
}

fn layout(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 7)?;
    if parsed.get_or("format", String::new())? == "spec" {
        // Machine-readable dump, loadable by `check --spec`.
        return Ok(raid_core::spec::format_layout(code.layout()));
    }
    Ok(format!(
        "{} (p = {p}, {} disks, {} rows)\nlegend: . data, H/V/D/A/X parity\n\n{}",
        code.name(),
        code.disks(),
        code.rows(),
        code.layout().render_ascii()
    ))
}

fn check(parsed: &Parsed) -> Result<String, String> {
    // Either a registered code (--code/--p) or a hand-written layout spec
    // file (--spec): the verifier is the same.
    let (name, owned_layout);
    let layout: &raid_core::Layout = if let Some(path) = parsed.flags.get("spec") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        owned_layout = raid_core::spec::parse_layout(&text).map_err(|e| e.to_string())?;
        name = format!("layout spec {path}");
        &owned_layout
    } else {
        let (code, p) = code_from(parsed, 7)?;
        name = format!("{} at p = {p}", code.name());
        owned_layout = code.layout().clone();
        &owned_layout
    };
    let singles = invariants::all_single_failures_decodable(layout);
    let pair = invariants::find_undecodable_pair(layout);
    let verdict = match (singles, pair) {
        (true, None) => "MDS: tolerates any two simultaneous disk failures ✔".to_string(),
        (false, _) => "BROKEN: some single-disk failure is unrecoverable ✘".to_string(),
        (_, Some((a, b))) => format!("NOT MDS: disks ({a},{b}) unrecoverable ✘"),
    };
    Ok(format!(
        "{name}: checked {} disk pairs\n{verdict}",
        layout.cols() * (layout.cols() - 1) / 2,
    ))
}

fn info(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 7)?;
    let layout = code.layout();
    let n = layout.cols();
    let mut min_chains = usize::MAX;
    let mut lc_sum = 0usize;
    let mut pairs = 0usize;
    for f1 in 0..n {
        for f2 in (f1 + 1)..n {
            let sched = double_failure_schedule(layout, f1, f2)
                .map_err(|e| format!("{e} — is the construction broken?"))?;
            min_chains = min_chains.min(sched.num_chains);
            lc_sum += sched.longest_chain;
            pairs += 1;
        }
    }
    let lengths = layout
        .chain_length_histogram()
        .into_iter()
        .map(|(l, c)| format!("{l}×{c}"))
        .collect::<Vec<_>>()
        .join(", ");
    Ok(format!(
        "{} at p = {p}\n\
         disks:                {}\n\
         rows per stripe:      {}\n\
         storage efficiency:   {:.1}%\n\
         update complexity:    {:.2} parity writes per data write\n\
         parity chain lengths: {lengths}\n\
         parities per disk:    {:?}\n\
         recovery chains:      ≥{min_chains} parallel (E[Lc] = {:.2})",
        code.name(),
        n,
        layout.rows(),
        code.storage_efficiency() * 100.0,
        update_complexity(layout),
        invariants::parities_per_column(layout),
        lc_sum as f64 / pairs as f64,
    ))
}

fn demo(parsed: &Parsed) -> Result<String, String> {
    let p = parsed.get_or("p", 7usize)?;
    let dot = parsed.get_or("dot", false)?;
    let code = hv_code::HvCode::new(p).map_err(|e| e.to_string())?;
    if dot {
        // Emit the recovery dependency graph instead of the prose demo.
        let (f1, f2) = (0, code.num_disks() / 2);
        let sched = double_failure_schedule(raid_core::ArrayCode::layout(&code), f1, f2)
            .map_err(|e| e.to_string())?;
        return Ok(sched.to_dot(&format!("HV Code p={p}, disks #{} #{}", f1 + 1, f2 + 1)));
    }
    let mut stripe = raid_core::Stripe::for_layout(raid_core::ArrayCode::layout(&code), 64);
    stripe.fill_data_seeded(raid_core::ArrayCode::layout(&code), 42);
    raid_core::ArrayCode::encode(&code, &mut stripe);
    let pristine = stripe.clone();
    let (f1, f2) = (0, code.num_disks() / 2);
    stripe.erase_col(f1);
    stripe.erase_col(f2);
    let plan = code
        .repair_double_disk(&mut stripe, f1, f2)
        .map_err(|e| e.to_string())?;
    let ok = stripe == pristine;
    let mut out = format!(
        "HV Code p = {p}: disks #{} and #{} failed and repaired via {} parallel chains\n",
        f1 + 1,
        f2 + 1,
        plan.num_chains()
    );
    for (i, chain) in plan.chains().iter().enumerate() {
        let path: Vec<String> = chain
            .iter()
            .map(|s| format!("E[{},{}]", s.cell.row + 1, s.cell.col + 1))
            .collect();
        out.push_str(&format!("  chain {}: {}\n", i + 1, path.join(" -> ")));
    }
    out.push_str(if ok { "recovery byte-exact ✔" } else { "RECOVERY MISMATCH ✘" });
    Ok(out)
}

fn replay(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 7)?;
    let path = parsed.require("trace")?;
    let stripes = parsed.get_or("stripes", 8usize)?;
    let cache_stripes = parsed.get_or("cache", 0usize)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = parse_trace(&text).map_err(|e| e.to_string())?;
    let mut volume = RaidVolume::in_memory(Arc::clone(&code), stripes, 64);
    if cache_stripes > 0 {
        volume.enable_cache(CacheConfig {
            max_stripes: cache_stripes,
            dirty_high_water: (cache_stripes * 3 / 4).max(1),
        });
    }
    let sim = DiskArray::new(volume.disks(), DiskProfile::savvio_10k());
    let out = replay_write_trace(&mut volume, sim, &trace).map_err(|e| e.to_string())?;
    let mut text = format!(
        "{} at p = {p}: replayed '{}' ({} patterns)\n\
         total write requests: {}\n\
         load balancing λ:     {:.2}\n\
         mean pattern latency: {:.2} ms (simulated)",
        code.name(),
        trace.name,
        out.patterns,
        out.total_write_requests(),
        out.lambda(),
        out.mean_latency_ms(),
    );
    if cache_stripes > 0 {
        text.push_str(&format!(
            "\nstripe cache ({cache_stripes} stripes): {} coalesced flushes, \
             {} evictions, total element I/O {}",
            out.ledger.cache_flushes(),
            out.ledger.cache_evictions(),
            out.ledger.total(),
        ));
    }
    Ok(text)
}

fn estimate(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 13)?;
    let stripes = parsed.get_or("stripes", 64usize)?;
    let mttf = parsed.get_or("mttf", 1_000_000.0f64)?;
    let profile = DiskProfile::savvio_10k();
    let rebuild = estimate_rebuild(code.as_ref(), stripes, profile);
    let mttdl = estimate_mttdl(code.as_ref(), stripes, profile, mttf);
    Ok(format!(
        "{} at p = {p}, {stripes} stripes, 16 MB elements, per-disk MTTF {mttf:.0} h\n\
         single-disk rebuild:  {:.0} ms\n\
         double-disk rebuild:  {:.0} ms\n\
         estimated MTTDL:      {:.2e} hours",
        code.name(),
        rebuild.single_ms,
        rebuild.double_ms,
        mttdl.mttdl_h,
    ))
}

/// Builds the backend requested by `--backend` (`mem` default; `file`
/// needs `--dir`).
fn backend_from(
    parsed: &Parsed,
    code: &Arc<dyn ArrayCode>,
    stripes: usize,
    element: usize,
) -> Result<Box<dyn DiskBackend>, String> {
    let kind = parsed.get_or("backend", "mem".to_string())?;
    let layout = code.layout();
    match kind.as_str() {
        "mem" => {
            Ok(Box::new(MemBackend::new(layout.cols(), stripes * layout.rows(), element)))
        }
        "file" => {
            let dir = parsed.require("dir")?;
            let b = FileBackend::create(dir, layout.cols(), stripes * layout.rows(), element)
                .map_err(|e| format!("{dir}: {e}"))?;
            Ok(Box::new(b))
        }
        other => Err(format!("unknown backend '{other}' (expected mem or file)")),
    }
}

/// A deterministic payload for the lifecycle/batch demos.
fn seeded_payload(bytes: usize, seed: u8) -> Vec<u8> {
    (0..bytes).map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed)).collect()
}

fn batch(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 13)?;
    let stripes = parsed.get_or("stripes", 256usize)?;
    let element = parsed.get_or("element", 4096usize)?;
    let threads = parsed.get_or("threads", 1usize)?;
    let backend = backend_from(parsed, &code, stripes, element)?;
    let mut volume = RaidVolume::new(Arc::clone(&code), stripes, element, backend)
        .map_err(|e| e.to_string())?;

    // Populate the whole data space (full-stripe writes — no RMW reads).
    let data = seeded_payload(volume.data_elements() * element, 11);
    volume.write(0, &data).map_err(|e| e.to_string())?;

    let bytes = data.len() as f64;
    let mib_s = |secs: f64| bytes / (1 << 20) as f64 / secs;

    // Batch re-encode: data elements are read back through the pipeline and
    // the XOR kernels run on worker threads.
    let t0 = std::time::Instant::now();
    let encode_io = volume.encode_all(threads).map_err(|e| e.to_string())?;
    let encode_s = t0.elapsed().as_secs_f64();

    let lost = [0usize, volume.disks() / 2];
    for &d in &lost {
        volume.fail_disk(d).map_err(|e| e.to_string())?;
    }
    let t1 = std::time::Instant::now();
    let rebuild_io = volume.rebuild_all(threads).map_err(|e| e.to_string())?;
    let rebuild_s = t1.elapsed().as_secs_f64();
    let intact = volume.verify_all();

    Ok(format!(
        "{} at p = {p}: {stripes} stripes × {element} B elements, {threads} thread(s), \
         {} backend\n\
         encode:  {:.1} ms ({:.0} MiB/s of data, {} element requests)\n\
         rebuild: {:.1} ms ({:.0} MiB/s of data, {} element requests, disks #{} and #{})\n\
         all stripes consistent after rebuild: {}",
        code.name(),
        volume.backend_kind(),
        encode_s * 1e3,
        mib_s(encode_s),
        encode_io.total(),
        rebuild_s * 1e3,
        mib_s(rebuild_s),
        rebuild_io.total(),
        lost[0] + 1,
        lost[1] + 1,
        if intact { "yes ✔" } else { "NO ✘" },
    ))
}

/// The full lifecycle on a file-backed volume, cross-checked against an
/// in-memory twin running the identical operation sequence: every read
/// must be byte-identical between the two backends.
fn volume_lifecycle(parsed: &Parsed) -> Result<String, String> {
    let (code, p) = code_from(parsed, 7)?;
    let name = parsed.require("code")?;
    let dir = parsed.require("dir")?;
    let stripes = parsed.get_or("stripes", 8usize)?;
    let element = parsed.get_or("element", 64usize)?;
    let layout = code.layout();

    let file_backend =
        FileBackend::create(dir, layout.cols(), stripes * layout.rows(), element)
            .map_err(|e| format!("{dir}: {e}"))?;
    VolumeMeta {
        code: name.to_string(),
        p,
        stripes,
        element_size: element,
        rotate: false,
        rebuild_checkpoint: None,
    }
    .save(dir)
    .map_err(|e| format!("{dir}: {e}"))?;
    let mut disk = RaidVolume::new(Arc::clone(&code), stripes, element, Box::new(file_backend))
        .map_err(|e| e.to_string())?;
    let mut mem = RaidVolume::in_memory(Arc::clone(&code), stripes, element);

    // Identical operation trace against both volumes.
    let data = seeded_payload(disk.data_elements() * element, 29);
    let mut steps = Vec::new();
    for v in [&mut disk, &mut mem] {
        v.write(0, &data).map_err(|e| e.to_string())?;
    }
    steps.push(format!("wrote {} data elements", disk.data_elements()));

    let failures = [1usize, layout.cols() / 2 + 1];
    for v in [&mut disk, &mut mem] {
        for &d in &failures {
            v.fail_disk(d).map_err(|e| e.to_string())?;
        }
    }
    steps.push(format!("failed disks #{} and #{}", failures[0] + 1, failures[1] + 1));

    let (from_disk, io) = disk.read(0, disk.data_elements()).map_err(|e| e.to_string())?;
    let (from_mem, _) = mem.read(0, mem.data_elements()).map_err(|e| e.to_string())?;
    if from_disk != data || from_disk != from_mem {
        return Err("degraded reads diverged between file and mem backends".into());
    }
    steps.push(format!("degraded full read byte-identical ({} element reads)", io.total_reads()));

    for v in [&mut disk, &mut mem] {
        v.rebuild().map_err(|e| e.to_string())?;
        if !v.verify_all() {
            return Err(format!("{} backend inconsistent after rebuild", v.backend_kind()));
        }
    }
    steps.push("rebuilt onto spares, parity verified on both".into());

    let (from_disk, _) = disk.read(0, disk.data_elements()).map_err(|e| e.to_string())?;
    let (from_mem, _) = mem.read(0, mem.data_elements()).map_err(|e| e.to_string())?;
    if from_disk != data || from_disk != from_mem {
        return Err("post-rebuild reads diverged between file and mem backends".into());
    }
    steps.push("post-rebuild full read byte-identical".into());

    let mut out = format!(
        "{} at p = {p}: lifecycle on file backend at {dir} vs in-memory twin\n",
        code.name()
    );
    for s in &steps {
        out.push_str(&format!("  ✔ {s}\n"));
    }
    out.push_str("file and mem backends byte-identical under the same trace ✔");
    Ok(out)
}

/// Reopens a file-backed volume and verifies it; `--repair true` rebuilds
/// failed disks (resuming any checkpointed rebuild) and scrubs silent
/// corruption first. Reports journal rollbacks performed by the reopen.
///
/// Exit status follows the fsck convention: 0 clean, 2 clean after
/// repairs, 3 unrecoverable or errors left uncorrected.
fn fsck(parsed: &Parsed) -> Result<(String, u8), String> {
    let dir = parsed.require("dir")?;
    let repair = parsed.get_or("repair", false)?;
    let json = parsed.get_or("json", false)?;
    let meta = VolumeMeta::load(dir).map_err(|e| format!("{dir}: {e}"))?;
    let code = build(&meta.code, meta.p)?;
    let backend = FileBackend::open(dir).map_err(|e| format!("{dir}: {e}"))?;
    // Opening replays the undo journal; remember what it did so the
    // operator learns a torn write was rolled back.
    let journal = backend.recovered_journal();
    let mut volume = match RaidVolume::open(Arc::clone(&code), Box::new(backend), meta.rotate) {
        Ok(v) => v,
        Err(VolumeError::TooManyFailures { failed }) => {
            let detail =
                format!("{failed} failed disks exceed RAID-6's two-erasure tolerance");
            return Ok(if json {
                (fsck_json(&meta, &[], journal.as_ref(), None, 0, false, "unrecoverable"), 3)
            } else {
                (format!("fsck: UNRECOVERABLE — {detail} ✘"), 3)
            });
        }
        Err(e) => return Err(e.to_string()),
    };
    let checkpoint = volume.rebuild_progress();

    let mut notes = Vec::new();
    match &journal {
        Some(JournalRecovery::RolledBack { elements }) => {
            notes.push(format!("rolled back a torn write ({elements} journaled elements)"));
        }
        Some(JournalRecovery::DiscardedTorn) => {
            notes.push("discarded a torn journal (write never began)".to_string());
        }
        None => {}
    }
    if let Some(cp) = &checkpoint {
        notes.push(format!(
            "rebuild in flight: disks {:?} checkpointed at stripe {}",
            cp.disks, cp.next_stripe
        ));
    }

    let failed = volume.failed_disks();
    let mut rebuilt = false;
    let mut scrub_repairs = 0usize;
    if !failed.is_empty() {
        notes.push(format!("failed disks: {failed:?}"));
        if repair {
            let io = volume.rebuild().map_err(|e| e.to_string())?;
            notes.push(format!("rebuilt onto spares ({} element requests)", io.total()));
            rebuilt = true;
        }
    }
    if repair && volume.failed_disks().is_empty() {
        let findings = volume.scrub().map_err(|e| e.to_string())?;
        scrub_repairs = findings.len();
        if scrub_repairs > 0 {
            notes.push(format!("scrub repaired {scrub_repairs} stripe(s)"));
        }
    }

    let consistent = volume.verify_all();
    let repaired = journal.is_some() || rebuilt || scrub_repairs > 0;
    let (status, exit) = if consistent && !repaired {
        ("clean", 0u8)
    } else if consistent {
        ("repaired", 2)
    } else if !volume.failed_disks().is_empty() {
        ("degraded", 3)
    } else {
        ("unrecoverable", 3)
    };

    if json {
        return Ok((
            fsck_json(
                &meta,
                &volume.failed_disks(),
                journal.as_ref(),
                checkpoint.as_ref(),
                scrub_repairs,
                rebuilt,
                status,
            ),
            exit,
        ));
    }
    let mut out = format!(
        "{} at p = {}: {} stripes × {} B elements on {} disks ({dir})\n",
        code.name(),
        meta.p,
        volume.stripes(),
        volume.element_size(),
        volume.disks(),
    );
    for n in &notes {
        out.push_str(&format!("  {n}\n"));
    }
    out.push_str(match status {
        "clean" => "fsck: volume clean ✔",
        "repaired" => "fsck: volume repaired, now clean ✔",
        "degraded" => "fsck: volume DEGRADED — run with --repair true to rebuild ✘",
        _ => "fsck: PARITY INCONSISTENT — unrecoverable ✘",
    });
    Ok((out, exit))
}

/// The machine-readable fsck report (hand-rolled, dependency-free JSON).
fn fsck_json(
    meta: &VolumeMeta,
    failed: &[usize],
    journal: Option<&JournalRecovery>,
    checkpoint: Option<&raid_array::RebuildCheckpoint>,
    scrub_repairs: usize,
    rebuilt: bool,
    status: &str,
) -> String {
    let list = |xs: &[usize]| {
        xs.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",")
    };
    let journal = match journal {
        None => "null".to_string(),
        Some(JournalRecovery::RolledBack { elements }) => {
            format!("{{\"rolled_back_elements\":{elements}}}")
        }
        Some(JournalRecovery::DiscardedTorn) => "\"discarded_torn\"".to_string(),
    };
    let checkpoint = match checkpoint {
        None => "null".to_string(),
        Some(cp) => format!(
            "{{\"disks\":[{}],\"next_stripe\":{}}}",
            list(&cp.disks),
            cp.next_stripe
        ),
    };
    format!(
        "{{\"code\":\"{}\",\"p\":{},\"stripes\":{},\"element_size\":{},\
         \"failed_disks\":[{}],\"journal_recovery\":{journal},\
         \"rebuild_checkpoint\":{checkpoint},\"rebuilt\":{rebuilt},\
         \"scrub_repairs\":{scrub_repairs},\"status\":\"{status}\"}}",
        meta.code,
        meta.p,
        meta.stripes,
        meta.element_size,
        list(failed),
    )
}

/// Runs a randomized fault-injection campaign (see [`raid_array::chaos`]).
fn chaos_campaign(parsed: &Parsed) -> Result<String, String> {
    let name = parsed.get_or("code", "hv".to_string())?;
    let p = parsed.get_or("p", 5usize)?;
    let code = build(&name, p)?;
    let defaults = ChaosConfig::default();
    let backend = parsed.get_or("backend", "both".to_string())?;
    let seed = parsed.get_or("seed", defaults.seed)?;
    let cfg = ChaosConfig {
        seed,
        episodes: parsed.get_or("episodes", defaults.episodes)?,
        steps_per_episode: parsed.get_or("steps", defaults.steps_per_episode)?,
        stripes: parsed.get_or("stripes", defaults.stripes)?,
        element_size: parsed.get_or("element", defaults.element_size)?,
        spares: parsed.get_or("spares", defaults.spares)?,
        dir: match backend.as_str() {
            "mem" => None,
            "both" => Some(match parsed.flags.get("dir") {
                Some(d) => std::path::PathBuf::from(d),
                None => std::env::temp_dir()
                    .join(format!("hvraid-chaos-{seed}-{}", std::process::id())),
            }),
            other => {
                return Err(format!("unknown backend '{other}' (expected both or mem)"))
            }
        },
        crash_sweeps: parsed.get_or("sweeps", defaults.crash_sweeps)?,
        cache: parsed.get_or("cache", defaults.cache)?,
        threads: parsed.get_or("threads", defaults.threads)?,
    };
    let scratch = cfg.dir.clone().filter(|_| !parsed.flags.contains_key("dir"));
    let result = chaos::run(&code, &cfg);
    if let Some(d) = scratch {
        let _ = std::fs::remove_dir_all(d);
    }
    let report = result.map_err(|f| f.to_string())?;
    Ok(format!(
        "{} at p = {p}, seed {seed}\n{report}\nreproduce with `hvraid chaos --seed {seed}`",
        code.name()
    ))
}

fn fleet_campaign(parsed: &Parsed) -> Result<String, String> {
    let name = parsed.get_or("code", "hv".to_string())?;
    let p = parsed.get_or("p", 5usize)?;
    let code = build(&name, p)?;
    let defaults = raid_fleet::FleetConfig::default();
    let volumes: usize = parsed.get_or("volumes", defaults.volumes)?;
    let cfg = raid_fleet::FleetConfig {
        volumes,
        hours: parsed.get_or("hours", defaults.hours)?,
        seed: parsed.get_or("seed", defaults.seed)?,
        stripes: parsed.get_or("stripes", defaults.stripes)?,
        element_size: parsed.get_or("element", defaults.element_size)?,
        spare_capacity: parsed
            .get_or("spares", raid_fleet::FleetConfig::default_spares_for(volumes))?,
        spare_replenish_h: parsed.get_or("replenish", defaults.spare_replenish_h)?,
        fail_scale_h: parsed.get_or("scale", defaults.fail_scale_h)?,
        qos: parsed.get_or("qos", defaults.qos)?,
        ..defaults
    };
    // The library asserts its domain; turn the user-reachable ones into
    // messages instead of panics.
    if cfg.volumes == 0 {
        return Err("--volumes must be at least 1".to_string());
    }
    if cfg.hours.is_nan() || cfg.hours <= 0.0 {
        return Err("--hours must be positive".to_string());
    }
    if cfg.stripes == 0 || cfg.element_size == 0 {
        return Err("--stripes and --element must be positive".to_string());
    }
    if cfg.fail_scale_h.is_nan() || cfg.fail_scale_h <= 0.0 {
        return Err("--scale must be positive".to_string());
    }
    if cfg.spare_replenish_h.is_nan() || cfg.spare_replenish_h < 0.0 {
        return Err("--replenish cannot be negative".to_string());
    }
    let report = raid_fleet::run(&code, &cfg);
    if parsed.get_or("json", false)? {
        Ok(report.to_json())
    } else {
        Ok(format!("{report}\nreproduce with `hvraid fleet --seed {}`", cfg.seed))
    }
}

fn lint(parsed: &Parsed) -> Result<String, String> {
    let json = parsed.get_or("json", false)?;
    let opt = parsed.get_or("opt", false)?;
    // With --min-savings N (implies --opt), a code whose optimized encode
    // plan saves less than N percent of the specification's XOR reads
    // fails the lint — the Makefile's bench-smoke regression gate.
    let min_savings: f64 = parsed.get_or("min-savings", -1.0f64)?;
    // The concurrency/crash auditors run inside every check_code call;
    // these flags additionally itemize their evidence per combination.
    let hazards = parsed.get_or("hazards", false)?;
    let journal = parsed.get_or("journal", false)?;
    let schedules = parsed.get_or("schedules", false)?;
    // `--all` is the default; the flag exists so scripts can say what they
    // mean. Naming a code restricts the sweep to it.
    let codes: Vec<String> = match parsed.flags.get("code") {
        Some(name) => vec![name.clone()],
        None => raid_verify::CODE_NAMES.iter().map(|s| s.to_string()).collect(),
    };
    let primes: Vec<usize> = if parsed.flags.contains_key("p") {
        vec![parsed.get_or("p", 7usize)?]
    } else {
        raid_verify::DEFAULT_PRIMES.to_vec()
    };

    let mut lines = Vec::new();
    let mut patterns = 0usize;
    for name in &codes {
        for &p in &primes {
            let report = raid_verify::check_code(name, p)
                .map_err(|e| format!("lint: {name} at p={p} FAILED\n  {e}"))?;
            patterns += report.mds_singles + report.mds_pairs;
            let spec = report.encode_reads_spec;
            let saved = spec.saturating_sub(report.encode_source_reads);
            let savings_pct =
                if spec > 0 { 100.0 * saved as f64 / spec as f64 } else { 0.0 };
            if min_savings >= 0.0 && savings_pct + 1e-9 < min_savings {
                return Err(format!(
                    "lint: {name} at p={p} FAILED\n  optimizer saved only {savings_pct:.1}% \
                     of the {spec} spec XOR reads (< --min-savings {min_savings})"
                ));
            }
            if json {
                lines.push(report.to_json());
            } else {
                let paper = if raid_verify::report::paper_expectation(name, p).is_some() {
                    "  paper table ✔"
                } else {
                    ""
                };
                lines.push(format!(
                    "{:<10} p={:<2} encode proven ({} ops, {} XORs)  MDS proven \
                     ({} single + {} double erasures)  UC {:.2}{}",
                    name,
                    p,
                    report.encode_ops,
                    report.encode_source_reads,
                    report.mds_singles,
                    report.mds_pairs,
                    report.metrics.update_complexity,
                    paper,
                ));
                if opt || min_savings >= 0.0 {
                    lines.push(format!(
                        "{:<10}       xopt: {} spec XOR reads → {} optimized \
                         (-{:.1}%, {} cascaded, {} scratch temp{})",
                        "",
                        spec,
                        report.encode_source_reads,
                        savings_pct,
                        report.encode_reads_cascaded,
                        report.encode_temps,
                        if report.encode_temps == 1 { "" } else { "s" },
                    ));
                }
            }
            // Itemized evidence beyond check_code's pass/fail: the actual
            // partition footprints and crash-prefix tallies.
            if hazards || journal {
                let code = raid_verify::build(name, p)?;
                let layout = code.layout();
                if hazards {
                    let h = raid_verify::hazard::prove_layout_hazard_free(layout)
                        .map_err(|e| format!("lint: {name} at p={p} FAILED\n  {e}"))?;
                    if json {
                        lines.push(h.encode_report.to_json());
                    } else {
                        lines.push(format!(
                            "{:<10}       hazards: {} batches disjoint across {} \
                             partitions (encode: {} ops over {} disks, 0 overlaps)",
                            "",
                            h.batches,
                            h.partitions,
                            h.encode_report.ops,
                            h.encode_report.disks,
                        ));
                    }
                }
                if journal {
                    let j = raid_verify::journal::prove_layout_journal(layout)
                        .map_err(|e| format!("lint: {name} at p={p} FAILED\n  {e}"))?;
                    if json {
                        lines.push(format!(
                            "{{\"code\":\"{name}\",\"p\":{p},\"journal_batches\":{},\
                             \"journal_crash_points\":{}}}",
                            j.batches, j.crash_points
                        ));
                    } else {
                        lines.push(format!(
                            "{:<10}       journal: {} crash prefixes across {} \
                             batch/mode pairs replay to all-old-or-all-new",
                            "", j.crash_points, j.batches,
                        ));
                    }
                }
            }
        }
    }
    if schedules {
        // Code-independent: the executor's concurrent protocols are
        // model-checked once, not per code/prime.
        let results =
            raid_verify::schedules::check_all_models().map_err(|e| format!("lint: {e}"))?;
        for r in &results {
            if json {
                lines.push(format!(
                    "{{\"model\":\"{}\",\"configs\":{},\"schedules\":{},\"max_depth\":{}}}",
                    r.model, r.configs, r.schedules, r.max_depth
                ));
            } else {
                lines.push(format!(
                    "schedules: {:<6} — {} configs, {} interleavings explored, \
                     max depth {} ✔",
                    r.model, r.configs, r.schedules, r.max_depth
                ));
            }
        }
    }
    if !json {
        lines.push(format!(
            "lint: {} code/prime combinations verified, {} erasure patterns proven ✔",
            codes.len() * primes.len(),
            patterns
        ));
    }
    Ok(lines.join("\n"))
}

/// Serves a volume as a concurrent block service on a unix socket until
/// a client sends `SHUTDOWN`. `--dir` persists to a file-backed volume
/// (reopened when metadata already exists, created otherwise); without
/// it the volume is in-memory and vanishes with the server.
fn serve(parsed: &Parsed) -> Result<String, String> {
    let name = parsed.get_or("code", "hv".to_string())?;
    let p = parsed.get_or("p", 5usize)?;
    let code = build(&name, p)?;
    let stripes = parsed.get_or("stripes", 16usize)?;
    let element = parsed.get_or("element", 64usize)?;
    let socket = parsed.require("socket")?;
    let layout = code.layout();

    let volume = match parsed.flags.get("dir") {
        None => RaidVolume::in_memory(Arc::clone(&code), stripes, element),
        Some(dir) if VolumeMeta::load(dir).is_ok() => {
            let meta = VolumeMeta::load(dir).map_err(|e| format!("{dir}: {e}"))?;
            let code = build(&meta.code, meta.p)?;
            let backend = FileBackend::open(dir).map_err(|e| format!("{dir}: {e}"))?;
            RaidVolume::open(code, Box::new(backend), meta.rotate).map_err(|e| e.to_string())?
        }
        Some(dir) => {
            let backend =
                FileBackend::create(dir, layout.cols(), stripes * layout.rows(), element)
                    .map_err(|e| format!("{dir}: {e}"))?;
            VolumeMeta {
                code: name.to_string(),
                p,
                stripes,
                element_size: element,
                rotate: false,
                rebuild_checkpoint: None,
            }
            .save(dir)
            .map_err(|e| format!("{dir}: {e}"))?;
            RaidVolume::new(Arc::clone(&code), stripes, element, Box::new(backend))
                .map_err(|e| e.to_string())?
        }
    };

    let cfg = ServiceConfig {
        coalesce: parsed.get_or("coalesce", true)?,
        queue_depth: parsed.get_or("queue-depth", 256usize)?,
        partitions: parsed.flags.get("partitions").map(|v| v.parse()).transpose().map_err(
            |_| "bad value for --partitions".to_string(),
        )?,
        ..ServiceConfig::default()
    };
    let svc = Service::new(volume, cfg);
    let server_cfg = ServerConfig {
        socket: std::path::PathBuf::from(socket),
        workers: parsed.get_or("workers", 4usize)?,
    };
    eprintln!("hvraid serve: listening on {socket} ({} p={p})", code.name());
    raid_service::serve(&svc, &server_cfg).map_err(|e| e.to_string())?;
    let stats = svc.stats();
    Ok(format!(
        "serve: shut down cleanly — {} ops from {} sessions, {} dispatch rounds, \
         {} writes merged into {} runs, final flush complete ✔",
        stats.ops_total(),
        stats.tenants.len(),
        stats.rounds,
        stats.merged_writes + stats.write_runs,
        stats.write_runs,
    ))
}

/// Drives a served volume through a scripted client session. The script
/// (a file via `--script`, else stdin) is one protocol verb per line
/// (HELLO/READ/WRITE/FLUSH/STATS/QUIT/SHUTDOWN), plus the client-side
/// `EXPECT <hex>` assertion on the previous READ; `#` starts a comment.
fn connect(parsed: &Parsed) -> Result<String, String> {
    let socket = parsed.require("socket")?;
    let script = match parsed.flags.get("script") {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
        }
        None => {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("stdin: {e}"))?;
            buf
        }
    };
    raid_service::run_script(std::path::Path::new(socket), &script)
}

/// Fetches the Prometheus text-format metrics snapshot from a running
/// server (ledger per-disk I/O, cache hit rates, health, per-tenant
/// latency quantiles).
fn stats(parsed: &Parsed) -> Result<String, String> {
    let socket = parsed.require("socket")?;
    raid_service::fetch_stats(std::path::Path::new(socket))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use crate::registry::CODE_NAMES;

    fn run_line(line: &[&str]) -> Result<String, String> {
        run(&parse(line.iter().map(|s| s.to_string())).unwrap())
    }

    fn run_line_status(line: &[&str]) -> Result<(String, u8), String> {
        run_with_status(&parse(line.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn serve_connect_stats_end_to_end() {
        let tag = std::process::id();
        let socket = std::env::temp_dir().join(format!("hvraid-cli-serve-{tag}.sock"));
        let sock = socket.to_str().unwrap().to_string();
        let server = std::thread::spawn({
            let sock = sock.clone();
            move || {
                run(&parse(
                    ["serve", "--socket", &sock, "--p", "5", "--stripes", "4", "--element", "8"]
                        .iter()
                        .map(|s| s.to_string()),
                )
                .unwrap())
            }
        });
        for _ in 0..400 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        let script_path = std::env::temp_dir().join(format!("hvraid-cli-script-{tag}.txt"));
        let payload = "aa55".repeat(8); // two 8-byte elements
        std::fs::write(
            &script_path,
            format!(
                "# smoke session\nHELLO cli writer\nWRITE 0 {payload}\nREAD 0 2\n\
                 EXPECT {payload}\nFLUSH\nQUIT\n"
            ),
        )
        .unwrap();
        let transcript = run_line(&[
            "connect", "--socket", &sock, "--script", script_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(transcript.contains("OK wrote 2"), "{transcript}");
        assert!(transcript.contains("# EXPECT ok"), "{transcript}");

        let metrics = run_line(&["stats", "--socket", &sock]).unwrap();
        assert!(metrics.contains("hvraid_cache_flushes_total"), "{metrics}");
        assert!(
            metrics.contains("hvraid_service_ops_total{tenant=\"cli\",class=\"writer\"}"),
            "{metrics}"
        );

        let shutdown_script = std::env::temp_dir().join(format!("hvraid-cli-shutdown-{tag}.txt"));
        std::fs::write(&shutdown_script, "HELLO cli2 reader\nSHUTDOWN\n").unwrap();
        run_line(&["connect", "--socket", &sock, "--script", shutdown_script.to_str().unwrap()])
            .unwrap();
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("shut down cleanly"), "{out}");
        let _ = std::fs::remove_file(script_path);
        let _ = std::fs::remove_file(shutdown_script);
    }

    #[test]
    fn fleet_reports_and_json_is_deterministic() {
        let line = [
            "fleet", "--volumes", "4", "--hours", "72", "--seed", "9", "--stripes", "8",
            "--element", "16", "--scale", "120", "--spares", "2",
        ];
        let human = run_line(&line).unwrap();
        assert!(human.contains("fleet: 4 volumes"), "{human}");
        assert!(human.contains("reproduce with `hvraid fleet --seed 9`"), "{human}");

        let mut json_line = line.to_vec();
        json_line.push("--json");
        let a = run_line(&json_line).unwrap();
        let b = run_line(&json_line).unwrap();
        assert_eq!(a, b, "seeded fleet JSON must be byte-identical");
        assert!(a.contains("\"schema_version\": 1"), "{a}");
        assert!(a.contains("\"volumes\": 4"), "{a}");
        assert!(a.contains("\"models\""), "{a}");
    }

    #[test]
    fn fleet_rejects_bad_domains() {
        assert!(run_line(&["fleet", "--volumes", "0"]).is_err());
        assert!(run_line(&["fleet", "--volumes", "2", "--hours", "0"]).is_err());
        assert!(run_line(&["fleet", "--volumes", "2", "--scale", "-5"]).is_err());
    }

    #[test]
    fn batch_encodes_and_rebuilds() {
        for threads in ["1", "4"] {
            let out = run_line(&[
                "batch", "--code", "hv", "--p", "7", "--stripes", "12", "--element", "64",
                "--threads", threads,
            ])
            .unwrap();
            assert!(out.contains("12 stripes"), "{out}");
            assert!(out.contains("consistent after rebuild: yes"), "{out}");
        }
    }

    #[test]
    fn batch_runs_on_a_file_backend() {
        let dir = std::env::temp_dir().join("hvraid_batch_file_test");
        let out = run_line(&[
            "batch", "--code", "hv", "--p", "5", "--stripes", "3", "--element", "32",
            "--backend", "file", "--dir", dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("file backend"), "{out}");
        assert!(out.contains("consistent after rebuild: yes"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn volume_lifecycle_and_fsck_round_trip() {
        let dir = std::env::temp_dir().join("hvraid_volume_test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run_line(&[
            "volume", "--code", "hv", "--p", "7", "--stripes", "4", "--element", "32",
            "--dir", dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("byte-identical under the same trace ✔"), "{out}");

        // The on-disk volume the lifecycle left behind passes fsck.
        let out = run_line(&["fsck", "--dir", dir.to_str().unwrap()]).unwrap();
        assert!(out.contains("volume clean ✔"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fsck_repairs_a_degraded_on_disk_volume() {
        let dir = std::env::temp_dir().join("hvraid_fsck_repair_test");
        let _ = std::fs::remove_dir_all(&dir);
        run_line(&[
            "volume", "--code", "hv", "--p", "5", "--stripes", "3", "--element", "16",
            "--dir", dir.to_str().unwrap(),
        ])
        .unwrap();

        // Fail a disk directly on the reopened backend, as a crash would
        // leave it.
        {
            let mut b = raid_array::FileBackend::open(&dir).unwrap();
            b.fail(1).unwrap();
        }
        let out = run_line(&["fsck", "--dir", dir.to_str().unwrap()]).unwrap();
        assert!(out.contains("DEGRADED"), "{out}");
        let out =
            run_line(&["fsck", "--dir", dir.to_str().unwrap(), "--repair", "true"]).unwrap();
        assert!(out.contains("rebuilt onto spares"), "{out}");
        assert!(out.contains("repaired, now clean ✔"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fsck_exit_codes_distinguish_clean_repaired_unrecoverable() {
        let dir = std::env::temp_dir().join("hvraid_fsck_exit_test");
        let _ = std::fs::remove_dir_all(&dir);
        run_line(&[
            "volume", "--code", "hv", "--p", "5", "--stripes", "3", "--element", "16",
            "--dir", dir.to_str().unwrap(),
        ])
        .unwrap();
        let d = dir.to_str().unwrap();

        // Clean volume: exit 0.
        let (out, status) = run_line_status(&["fsck", "--dir", d]).unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("clean ✔"), "{out}");

        // Degraded, no --repair: errors left uncorrected, exit 3.
        {
            let mut b = raid_array::FileBackend::open(&dir).unwrap();
            b.fail(1).unwrap();
        }
        let (out, status) = run_line_status(&["fsck", "--dir", d]).unwrap();
        assert_eq!(status, 3, "{out}");
        assert!(out.contains("DEGRADED"), "{out}");

        // Repaired: exit 2, and a rerun is clean again (exit 0).
        let (out, status) =
            run_line_status(&["fsck", "--dir", d, "--repair", "true"]).unwrap();
        assert_eq!(status, 2, "{out}");
        assert!(out.contains("repaired, now clean ✔"), "{out}");
        let (_, status) = run_line_status(&["fsck", "--dir", d]).unwrap();
        assert_eq!(status, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fsck_json_is_machine_readable() {
        let dir = std::env::temp_dir().join("hvraid_fsck_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        run_line(&[
            "volume", "--code", "hv", "--p", "5", "--stripes", "3", "--element", "16",
            "--dir", dir.to_str().unwrap(),
        ])
        .unwrap();
        let (out, status) =
            run_line_status(&["fsck", "--dir", dir.to_str().unwrap(), "--json"]).unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.starts_with('{') && out.ends_with('}'), "{out}");
        assert!(out.contains("\"status\":\"clean\""), "{out}");
        assert!(out.contains("\"journal_recovery\":null"), "{out}");
        assert!(out.contains("\"rebuild_checkpoint\":null"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn chaos_runs_a_small_deterministic_campaign() {
        let out = run_line(&[
            "chaos", "--seed", "11", "--episodes", "3", "--backend", "mem",
        ])
        .unwrap();
        assert!(out.contains("seed 11"), "{out}");
        assert!(out.contains("3 episodes"), "{out}");
        assert!(out.contains("all consistent"), "{out}");
        assert!(out.contains("reproduce with `hvraid chaos --seed 11`"), "{out}");
    }

    #[test]
    fn chaos_accepts_threads_flag() {
        let out = run_line(&[
            "chaos", "--seed", "7", "--episodes", "2", "--backend", "mem", "--threads", "4",
            "--stripes", "8",
        ])
        .unwrap();
        assert!(out.contains("2 episodes"), "{out}");
        assert!(out.contains("all consistent"), "{out}");
    }

    #[test]
    fn layout_renders_grid() {
        let out = run_line(&["layout", "--code", "hv", "--p", "7"]).unwrap();
        assert!(out.contains("HV Code"));
        assert!(out.contains(".H.V..\n"));
    }

    #[test]
    fn check_reports_mds() {
        for name in CODE_NAMES {
            let out = run_line(&["check", "--code", name]).unwrap();
            assert!(out.contains("MDS"), "{name}: {out}");
            assert!(out.contains('✔'), "{name}: {out}");
        }
    }

    #[test]
    fn info_summarizes() {
        let out = run_line(&["info", "--code", "hv", "--p", "13"]).unwrap();
        assert!(out.contains("83.3%"));
        assert!(out.contains("2.00 parity writes"));
        assert!(out.contains("≥4 parallel"));
    }

    #[test]
    fn demo_repairs() {
        let out = run_line(&["demo", "--p", "11"]).unwrap();
        assert!(out.contains("4 parallel chains"));
        assert!(out.contains("byte-exact ✔"));
    }

    #[test]
    fn demo_dot_emits_graphviz() {
        let out = run_line(&["demo", "--p", "7", "--dot", "true"]).unwrap();
        assert!(out.starts_with("digraph recovery {"));
        assert_eq!(out.matches("doublecircle").count(), 4);
    }

    #[test]
    fn replay_runs_a_trace_file() {
        let dir = std::env::temp_dir().join("hvraid_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        std::fs::write(&path, "# name: demo\n0 5 3\n10 2 1\n").unwrap();
        let out = run_line(&["replay", "--code", "hv", "--trace", path.to_str().unwrap()])
            .unwrap();
        assert!(out.contains("4 patterns"));
        assert!(out.contains("load balancing"));
        let cached = run_line(&[
            "replay", "--code", "hv", "--trace", path.to_str().unwrap(), "--cache", "8",
        ])
        .unwrap();
        assert!(cached.contains("stripe cache (8 stripes)"), "{cached}");
        assert!(cached.contains("coalesced flushes"), "{cached}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn estimate_reports_mttdl() {
        let out = run_line(&["estimate", "--code", "hv", "--p", "7", "--stripes", "4"]).unwrap();
        assert!(out.contains("MTTDL"));
        assert!(out.contains("rebuild"));
    }

    #[test]
    fn layout_spec_round_trips_through_check() {
        let spec = run_line(&["layout", "--code", "hv", "--p", "7", "--format", "spec"]).unwrap();
        assert!(spec.starts_with("layout 6 6\n"));
        let dir = std::env::temp_dir().join("hvraid_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hv7.layout");
        std::fs::write(&path, &spec).unwrap();
        let out = run_line(&["check", "--spec", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("MDS"), "{out}");
        assert!(out.contains('✔'), "{out}");

        // A deliberately broken spec (single parity) must be called out.
        let bad = "layout 1 3\nkinds\n..H\nchain H 0,2 = 0,0 0,1\n";
        let bad_path = dir.join("bad.layout");
        std::fs::write(&bad_path, bad).unwrap();
        let out = run_line(&["check", "--spec", bad_path.to_str().unwrap()]).unwrap();
        assert!(out.contains("NOT MDS"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn lint_proves_one_code_and_prints_the_proof_shape() {
        let out = run_line(&["lint", "--code", "hv", "--p", "5"]).unwrap();
        assert!(out.contains("encode proven"), "{out}");
        assert!(out.contains("MDS proven"), "{out}");
        assert!(out.contains("paper table ✔"), "{out}");
        // p=5 HV: 4 disks → 4 singles + 6 pairs.
        assert!(out.contains("4 single + 6 double erasures"), "{out}");
    }

    #[test]
    fn lint_json_is_machine_readable() {
        let out = run_line(&["lint", "--code", "xcode", "--p", "5", "--json"]).unwrap();
        assert!(out.starts_with('{') && out.ends_with('}'), "{out}");
        assert!(out.contains("\"code\":\"xcode\""), "{out}");
        assert!(out.contains("\"paper_match\":true"), "{out}");
    }

    #[test]
    fn lint_hazards_and_journal_itemize_their_evidence() {
        let out = run_line(&[
            "lint", "--code", "hv", "--p", "5", "--hazards", "--journal",
        ])
        .unwrap();
        assert!(out.contains("hazards: 5 batches disjoint across 3 partitions"), "{out}");
        assert!(out.contains("0 overlaps"), "{out}");
        assert!(out.contains("replay to all-old-or-all-new"), "{out}");
        assert!(out.contains("6 batch/mode pairs"), "{out}");
    }

    #[test]
    fn lint_hazards_json_reports_zero_hazards_and_footprints() {
        let out = run_line(&[
            "lint", "--code", "rdp", "--p", "5", "--json", "--hazards", "--journal",
        ])
        .unwrap();
        assert!(out.contains("\"hazards\":0"), "{out}");
        assert!(out.contains("\"partitions\":["), "{out}");
        assert!(out.contains("\"journal_crash_points\":"), "{out}");
    }

    #[test]
    fn lint_schedules_model_checks_the_executor_protocols() {
        let out = run_line(&[
            "lint", "--code", "hv", "--p", "5", "--schedules",
        ])
        .unwrap();
        for model in ["cursor", "merge", "queue"] {
            assert!(out.contains(&format!("schedules: {model}")), "{model}: {out}");
        }
        assert!(out.contains("interleavings explored"), "{out}");
    }

    #[test]
    fn lint_rejects_unknown_code_with_context() {
        let err = run_line(&["lint", "--code", "nope", "--p", "5"]).unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        assert!(err.contains("unknown code"), "{err}");
    }

    #[test]
    fn errors_are_friendly() {
        assert!(run_line(&["bogus"]).unwrap_err().contains("unknown command"));
        assert!(run_line(&["layout"]).unwrap_err().contains("--code"));
        assert!(run_line(&["layout", "--code", "hv", "--p", "9"])
            .unwrap_err()
            .contains("p=9"));
        assert!(run_line(&["help"]).unwrap().contains("usage"));
    }
}
