//! `hvraid` — the command-line entry point; all logic lives in the library
//! (see [`hvraid::commands`]).

use std::process::ExitCode;

use hvraid::args::parse;
use hvraid::commands::{run, USAGE};

fn main() -> ExitCode {
    let parsed = match parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&parsed) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
