//! `hvraid` — the command-line entry point; all logic lives in the library
//! (see [`hvraid::commands`]).

use std::process::ExitCode;

use hvraid::args::parse;
use hvraid::commands::{run_with_status, USAGE};

fn main() -> ExitCode {
    let parsed = match parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run_with_status(&parsed) {
        Ok((out, status)) => {
            println!("{out}");
            ExitCode::from(status)
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
