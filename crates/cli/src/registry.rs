//! Name → code constructor registry.

use std::sync::Arc;

use hv_code::HvCode;
use raid_baselines::{EvenOddCode, HCode, HdpCode, LiberationCode, PCode, RdpCode, XCode};
use raid_core::ArrayCode;

/// Codes the CLI knows, keyed by their CLI names.
pub const CODE_NAMES: [&str; 8] =
    ["hv", "rdp", "evenodd", "xcode", "hcode", "hdp", "pcode", "liberation"];

/// Builds a code by CLI name.
///
/// # Errors
///
/// Returns a human-readable message for unknown names or invalid primes.
pub fn build(name: &str, p: usize) -> Result<Arc<dyn ArrayCode>, String> {
    let err = |e: &dyn std::fmt::Display| format!("cannot build {name} at p={p}: {e}");
    match name {
        "hv" => HvCode::new(p).map(|c| Arc::new(c) as Arc<dyn ArrayCode>).map_err(|e| err(&e)),
        "rdp" => RdpCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "evenodd" => EvenOddCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "xcode" => XCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "hcode" => HCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "hdp" => HdpCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "pcode" => PCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "liberation" => {
            LiberationCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e))
        }
        other => Err(format!(
            "unknown code '{other}' (expected one of {})",
            CODE_NAMES.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registered_names_build() {
        for name in CODE_NAMES {
            let code = build(name, 7).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!code.name().is_empty());
        }
    }

    #[test]
    fn unknown_name_and_bad_prime() {
        assert!(build("nope", 7).unwrap_err().contains("unknown code"));
        assert!(build("hv", 9).unwrap_err().contains("p=9"));
    }
}
