//! Name → code constructor registry.
//!
//! The canonical registry lives in `raid-verify` (so `check_all()` is
//! self-contained for `make verify` and the test suite); the CLI simply
//! re-exports it.

pub use raid_verify::{build, CODE_NAMES};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registered_names_build() {
        for name in CODE_NAMES {
            let code = build(name, 7).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!code.name().is_empty());
        }
    }

    #[test]
    fn unknown_name_and_bad_prime() {
        assert!(build("nope", 7).unwrap_err().contains("unknown code"));
        assert!(build("hv", 9).unwrap_err().contains("p=9"));
    }
}
