#!/bin/sh
# End-to-end smoke of the served volume: `hvraid serve` on a temp unix
# socket over a file-backed volume, a scripted client proving byte
# identity through the line protocol, a Prometheus stats scrape, a clean
# SHUTDOWN (drain + flush), then fsck over the directory must exit 0.
set -eu

CARGO=${CARGO:-cargo}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/hvraid-serve-smoke.XXXXXX")
trap 'rm -rf "$TMP"' EXIT
SOCK="$TMP/hvraid.sock"
VOL="$TMP/vol"

$CARGO build -q --release -p hvraid
HV=target/release/hvraid

"$HV" serve --socket "$SOCK" --dir "$VOL" --p 5 --stripes 4 --element 16 &
SERVE_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: socket never appeared" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done

# Two elements of payload; the read-back and the single-element re-read
# must return exactly the written bytes (EXPECT aborts non-zero if not).
PAYLOAD=deadbeefcafef00d1122334455667788
cat > "$TMP/client.txt" <<EOF
HELLO smoke writer
WRITE 0 $PAYLOAD$PAYLOAD
READ 0 2
EXPECT $PAYLOAD$PAYLOAD
FLUSH
READ 1 1
EXPECT $PAYLOAD
QUIT
EOF
"$HV" connect --socket "$SOCK" --script "$TMP/client.txt"

"$HV" stats --socket "$SOCK" | grep -q '^hvraid_service_ops_total'

printf 'HELLO smoke2 reader\nSHUTDOWN\n' > "$TMP/down.txt"
"$HV" connect --socket "$SOCK" --script "$TMP/down.txt"

# The serve process must exit cleanly once SHUTDOWN lands.
wait "$SERVE_PID"

# The shutdown flush must leave the on-disk array parity-consistent.
"$HV" fsck --dir "$VOL"
echo "serve-smoke: OK"
