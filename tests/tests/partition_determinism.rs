//! Determinism of the partitioned stripe-range executor.
//!
//! Two properties the whole partition/shard design rests on:
//!
//! 1. **Order-independent shard merges.** Workers finish in whatever
//!    order the scheduler likes; `IoLedger::merge_shards` must produce
//!    the same ledger as a single sequential ledger absorbing the same
//!    request sets, for *any* interleaving of shard completion.
//! 2. **Partitioned execution is byte-identical to serial.** For every
//!    code, running `encode_all`/`rebuild_all` over 1 partition or many
//!    must leave the same disk image on the platters and account the
//!    same merged totals.

use std::sync::Arc;

use proptest::prelude::*;

use integration::{all_codes, payload};
use raid_array::{run_partitioned, PartitionMap, RaidVolume};
use raid_core::io::{IoLedger, LedgerShard, RequestSet};
use raid_core::Stripe;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic synthetic request set for one stripe — shaped like a
/// real lowered op (reads on most disks, a few data/parity writes).
fn stripe_requests(disks: usize, stripe: usize, seed: u64) -> RequestSet {
    let mut rs = RequestSet::new(disks);
    let mut state = seed ^ (stripe as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    for disk in 0..disks {
        rs.add_reads(disk, splitmix(&mut state) % 4);
        if splitmix(&mut state).is_multiple_of(3) {
            rs.add_data_write(disk);
        }
        if splitmix(&mut state).is_multiple_of(4) {
            rs.add_parity_write(disk);
        }
    }
    rs
}

/// Fisher–Yates with a seeded splitmix stream: a deterministic
/// "interleaving" of worker completion order.
fn permuted<T>(mut items: Vec<T>, mut seed: u64) -> Vec<T> {
    for i in (1..items.len()).rev() {
        let j = (splitmix(&mut seed) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
    items
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: shards merged in any completion order equal the
    /// sequential single-ledger run, for every code and p ∈ {5, 13}.
    #[test]
    fn shard_merge_any_interleaving_equals_sequential(
        p in prop::sample::select(vec![5usize, 13]),
        partitions in 1usize..6,
        stripes in 1usize..12,
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        for code in all_codes(p) {
            let layout = code.layout();
            let disks = layout.cols();

            // Sequential reference: one ledger absorbing stripe request
            // sets in stripe order, transitions noted per partition in
            // partition order.
            let map = PartitionMap::build(stripes, partitions);
            let mut sequential = IoLedger::new(disks);
            for part in 0..map.len() {
                for stripe in map.partitions()[part].range() {
                    sequential.absorb(&stripe_requests(disks, stripe, seed));
                }
                sequential.note_transition(format!("partition {part} drained"));
            }

            // Sharded run: one shard per partition, then merged after a
            // seeded shuffle standing in for arbitrary completion order.
            let mut shards = Vec::new();
            for part in 0..map.len() {
                let mut shard = LedgerShard::new(part, disks);
                for stripe in map.partitions()[part].range() {
                    shard.absorb(&stripe_requests(disks, stripe, seed));
                }
                shard.note_transition(format!("partition {part} drained"));
                shards.push(shard);
            }
            let merged = IoLedger::merge_shards(disks, permuted(shards, perm_seed));

            prop_assert_eq!(merged.total(), sequential.total(), "{}", code.name());
            prop_assert_eq!(merged.per_disk_totals(), sequential.per_disk_totals());
            prop_assert_eq!(merged.total_reads(), sequential.total_reads());
            prop_assert_eq!(merged.data_writes(), sequential.data_writes());
            prop_assert_eq!(merged.parity_writes(), sequential.parity_writes());
            prop_assert_eq!(merged.transitions(), sequential.transitions(),
                "transitions must come out in partition order, not completion order");
        }
    }

    /// Property 1b: the live executor honors the same contract — the
    /// shards `run_partitioned` hands back merge to the serial ledger no
    /// matter how many workers raced over the map.
    #[test]
    fn run_partitioned_shards_merge_to_serial_ledger(
        p in prop::sample::select(vec![5usize, 13]),
        threads in 1usize..5,
        stripes in 1usize..10,
        seed in any::<u64>(),
    ) {
        let code = all_codes(p).remove(0);
        let layout = code.layout();
        let disks = layout.cols();
        let make = || {
            (0..stripes)
                .map(|i| {
                    let mut s = Stripe::for_layout(layout, 8);
                    s.fill_data_seeded(layout, seed ^ i as u64);
                    s
                })
                .collect::<Vec<_>>()
        };

        let mut serial_stripes = make();
        let map1 = PartitionMap::build(stripes, 1);
        let (_, serial_shards) =
            run_partitioned(&map1, disks, &mut serial_stripes, 1, |shard, i, stripe| {
                code.encode(stripe);
                shard.absorb(&stripe_requests(disks, i, seed));
            });
        let serial = IoLedger::merge_shards(disks, serial_shards);

        let mut parted_stripes = make();
        let map = PartitionMap::build(stripes, threads);
        let (_, shards) =
            run_partitioned(&map, disks, &mut parted_stripes, threads, |shard, i, stripe| {
                code.encode(stripe);
                shard.absorb(&stripe_requests(disks, i, seed));
            });
        let merged = IoLedger::merge_shards(disks, shards);

        prop_assert_eq!(parted_stripes, serial_stripes, "stripe bytes must match serial");
        prop_assert_eq!(merged.total(), serial.total());
        prop_assert_eq!(merged.per_disk_totals(), serial.per_disk_totals());
    }

    /// Property 2: a volume driven through partitioned `encode_all` +
    /// `rebuild_all` ends byte-identical to the serial run, with the same
    /// merged receipt totals — for every code in the workspace.
    #[test]
    fn partitioned_volume_ops_match_serial_image(
        p in prop::sample::select(vec![5usize, 13]),
        seed in any::<u64>(),
    ) {
        let stripes = 4usize;
        let es = 8usize;
        for code in all_codes(p) {
            let name = code.name().to_string();
            let run = |parts: usize, threads: usize| {
                let mut v =
                    RaidVolume::in_memory(Arc::clone(&code), stripes, es);
                v.set_partitions(Some(parts));
                let data = payload(v.data_elements() * es, seed);
                v.write(0, &data).unwrap();
                let enc = v.encode_all(threads).unwrap();
                v.fail_disk(1).unwrap();
                v.fail_disk(code.layout().cols() - 1).unwrap();
                let reb = v.rebuild_all(threads).unwrap();
                assert!(v.verify_all(), "{name}");
                let (bytes, _) = v.read(0, v.data_elements()).unwrap();
                (bytes, enc, reb, data)
            };
            let (serial_bytes, serial_enc, serial_reb, data) = run(1, 1);
            let (parted_bytes, parted_enc, parted_reb, _) = run(4, 4);
            prop_assert_eq!(&serial_bytes, &data, "{}", &name);
            prop_assert_eq!(serial_bytes, parted_bytes, "{}", &name);
            prop_assert_eq!(serial_enc.total(), parted_enc.total(), "{}", &name);
            prop_assert_eq!(
                serial_enc.per_disk_totals(), parted_enc.per_disk_totals(), "{}", &name);
            prop_assert_eq!(serial_reb.total(), parted_reb.total(), "{}", &name);
            prop_assert_eq!(
                serial_reb.per_disk_totals(), parted_reb.per_disk_totals(), "{}", &name);
        }
    }
}
