//! Pinned evidence that the adaptive rebuild throttle bounds foreground
//! latency inflation: the same volume, trace, and seed, rebuilt twice —
//! once paced by the throttle, once flat-out at the ceiling.

use std::sync::Arc;

use raid_core::ArrayCode;
use raid_fleet::rebuild_under_load;

const STRIPES: usize = 64;
const ELEMENT: usize = 16;
const SEED: u64 = 1701;

fn hv5() -> Arc<dyn ArrayCode> {
    Arc::new(hv_code::HvCode::new(5).expect("p=5 is prime"))
}

#[test]
fn throttled_rebuild_bounds_foreground_latency_inflation() {
    let code = hv5();
    let throttled = rebuild_under_load(&code, STRIPES, ELEMENT, SEED, true);
    let unthrottled = rebuild_under_load(&code, STRIPES, ELEMENT, SEED, false);
    println!("throttled:   {throttled:?}");
    println!("unthrottled: {unthrottled:?}");

    // Identical healthy baseline: same volume, same trace, same seed.
    assert_eq!(throttled.baseline_p99_ms, unthrottled.baseline_p99_ms);

    // The throttle trades rebuild speed for foreground latency: it backs
    // off, grants a lower mean rate, and takes at least as many ticks.
    assert!(throttled.backoffs > 0, "throttle never backed off: {throttled:?}");
    assert!(
        throttled.mean_rate < unthrottled.mean_rate,
        "throttle did not reduce the rebuild rate: {throttled:?} vs {unthrottled:?}"
    );
    assert!(
        unthrottled.rebuild_ticks <= throttled.rebuild_ticks,
        "flat-out rebuild finished later than the throttled one"
    );

    // ... and what it buys: foreground p99 under rebuild stays strictly
    // below the unthrottled run's.
    assert!(
        throttled.rebuild_p99_ms < unthrottled.rebuild_p99_ms,
        "throttling did not improve foreground p99: {throttled:?} vs {unthrottled:?}"
    );
    assert!(
        throttled.inflation < unthrottled.inflation / 2.0,
        "throttling should at least halve the latency inflation: \
         {throttled:?} vs {unthrottled:?}"
    );
}

#[test]
fn qos_runs_are_deterministic() {
    let code = hv5();
    let a = rebuild_under_load(&code, STRIPES, ELEMENT, SEED, true);
    let b = rebuild_under_load(&code, STRIPES, ELEMENT, SEED, true);
    assert_eq!(a, b);
}
