//! Cross-validation of HV Code's specialized paths against the generic
//! reference machinery — the "fast path must equal slow path" contract.

use hv_code::HvCode;
use raid_core::{decoder, schedule, ArrayCode, Stripe};

#[test]
fn algorithm1_equals_generic_decoder_bytes() {
    for p in [5usize, 7, 11, 13, 17] {
        let code = HvCode::new(p).unwrap();
        let layout = code.layout();
        let mut pristine = Stripe::for_layout(layout, 32);
        pristine.fill_data_seeded(layout, p as u64 * 7 + 1);
        code.encode(&mut pristine);
        let n = layout.cols();
        for f1 in 0..n {
            for f2 in (f1 + 1)..n {
                let mut via_alg1 = pristine.clone();
                via_alg1.erase_col(f1);
                via_alg1.erase_col(f2);
                code.repair_double_disk(&mut via_alg1, f1, f2).unwrap();

                let mut via_generic = pristine.clone();
                via_generic.erase_col(f1);
                via_generic.erase_col(f2);
                let mut lost = layout.cells_in_col(f1);
                lost.extend(layout.cells_in_col(f2));
                decoder::decode(&mut via_generic, layout, &lost).unwrap();

                assert_eq!(via_alg1, via_generic, "p={p} ({f1},{f2})");
                assert_eq!(via_alg1, pristine, "p={p} ({f1},{f2})");
            }
        }
    }
}

#[test]
fn algorithm1_parallelism_matches_scheduler() {
    for p in [5usize, 7, 11, 13] {
        let code = HvCode::new(p).unwrap();
        let n = code.layout().cols();
        for f1 in 0..n {
            for f2 in (f1 + 1)..n {
                let plan = code.double_recovery_plan(f1, f2).unwrap();
                let sched =
                    schedule::double_failure_schedule(code.layout(), f1, f2).unwrap();
                assert_eq!(plan.num_chains(), 4, "p={p} ({f1},{f2})");
                assert_eq!(sched.num_chains, 4, "p={p} ({f1},{f2})");
                assert_eq!(plan.longest_chain(), sched.longest_chain, "p={p} ({f1},{f2})");
                assert_eq!(plan.total_elements(), 2 * n, "p={p} ({f1},{f2})");
            }
        }
    }
}

#[test]
fn eq5_eq6_agree_with_generic_single_cell_decode() {
    let code = HvCode::new(11).unwrap();
    let layout = code.layout();
    let mut stripe = Stripe::for_layout(layout, 16);
    stripe.fill_data_seeded(layout, 3);
    code.encode(&mut stripe);

    for &cell in layout.data_cells() {
        // Erase just this cell; both equations and the generic decoder must
        // reproduce it.
        let truth = stripe.element(cell).to_vec();

        let via_h = stripe.xor_of(code.repair_sources_horizontal(cell));
        let via_v = stripe.xor_of(code.repair_sources_vertical(cell));
        assert_eq!(via_h, truth, "Eq.5 at {cell}");
        assert_eq!(via_v, truth, "Eq.6 at {cell}");

        let mut broken = stripe.clone();
        broken.erase(cell);
        decoder::decode(&mut broken, layout, &[cell]).unwrap();
        assert_eq!(broken.element(cell), &truth[..], "generic at {cell}");
    }
}

#[test]
fn hv_is_mds_at_large_primes() {
    // Exhaustive two-column decodability beyond the paper's sweep — the
    // peeling check is cheap, so push to 30+-disk arrays.
    for p in [29usize, 37] {
        let code = HvCode::new(p).unwrap();
        assert_eq!(
            raid_core::invariants::find_undecodable_pair(code.layout()),
            None,
            "HV p={p} must be MDS"
        );
    }
}

#[test]
fn hv_supports_large_primes() {
    // A quick smoke test at the upper end of the paper's sweep and beyond.
    for p in [23usize, 29, 31] {
        let code = HvCode::new(p).unwrap();
        let layout = code.layout();
        assert_eq!(layout.cols(), p - 1);
        let mut stripe = Stripe::for_layout(layout, 8);
        stripe.fill_data_seeded(layout, 1);
        code.encode(&mut stripe);
        let pristine = stripe.clone();
        stripe.erase_col(0);
        stripe.erase_col(p / 2);
        code.repair_double_disk(&mut stripe, 0, p / 2).unwrap();
        assert_eq!(stripe, pristine, "p={p}");
    }
}
