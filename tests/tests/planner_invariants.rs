//! Planner invariants that must hold for every code: the generic machinery
//! can make no code-specific assumptions.

use integration::all_codes;
use raid_core::plan::degraded::plan_degraded_read;
use raid_core::plan::single::{plan_single_disk_recovery, SearchStrategy};
use raid_core::plan::update::parity_updates;
use raid_core::{invariants, Stripe};

#[test]
fn update_closure_equals_reencode_for_every_code() {
    // Writing one data element and updating exactly the planner's parity
    // set must equal a full re-encode.
    for code in all_codes(7) {
        let name = code.name().to_string();
        let layout = code.layout();
        for &cell in layout.data_cells() {
            let mut stripe = Stripe::for_layout(layout, 8);
            stripe.fill_data_seeded(layout, 5);
            code.encode(&mut stripe);

            // Flip the element, then recompute only the planned parities
            // (from full chain membership, in dependency order).
            let mut patched = stripe.clone();
            let newval = vec![0xEEu8; 8];
            patched.set_element(cell, &newval);
            let mut pending = parity_updates(layout, cell);
            while !pending.is_empty() {
                let mut rest = Vec::new();
                let before = pending.len();
                for &parity in &pending {
                    let chain_id = layout.chain_of_parity(parity).unwrap();
                    let chain = layout.chain(chain_id);
                    if chain.members.iter().any(|m| pending.contains(m)) {
                        rest.push(parity);
                        continue;
                    }
                    let val = patched.xor_of(chain.members.iter().copied());
                    patched.set_element(parity, &val);
                }
                assert!(rest.len() < before, "{name}: no progress at {cell}");
                pending = rest;
            }

            let mut reencoded = stripe.clone();
            reencoded.set_element(cell, &newval);
            code.encode(&mut reencoded);
            assert_eq!(patched, reencoded, "{name}: cell {cell}");
        }
    }
}

#[test]
fn degraded_read_plans_are_sound() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        let layout = code.layout();
        let data = layout.data_cells();
        for failed in 0..layout.cols() {
            // A sliding window of requests.
            for win in [1usize, 3, 7] {
                for start in (0..data.len().saturating_sub(win)).step_by(5) {
                    let req = &data[start..start + win];
                    let plan = plan_degraded_read(layout, failed, req);
                    // Never fetches from the failed disk.
                    assert!(
                        plan.fetched.iter().all(|c| c.col != failed),
                        "{name}: fetched from failed disk"
                    );
                    // Surviving requested cells are always fetched.
                    for &r in req {
                        if r.col != failed {
                            assert!(
                                plan.fetched.contains(&r),
                                "{name}: requested {r} not fetched"
                            );
                        }
                    }
                    // Efficiency is at least 1 and bounded by chain length.
                    let eff = plan.efficiency();
                    assert!(eff >= 1.0 - 1e-9, "{name}: eff {eff}");
                    let max_len = layout
                        .chain_length_histogram()
                        .iter()
                        .map(|&(l, _)| l)
                        .max()
                        .unwrap() as f64;
                    assert!(
                        eff <= max_len + 1.0,
                        "{name}: eff {eff} exceeds chain bound"
                    );
                }
            }
        }
    }
}

#[test]
fn single_disk_plans_repair_correctly() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        let layout = code.layout();
        let mut pristine = Stripe::for_layout(layout, 16);
        pristine.fill_data_seeded(layout, 9);
        code.encode(&mut pristine);

        for failed in 0..layout.cols() {
            for strategy in [
                SearchStrategy::Greedy,
                SearchStrategy::Exhaustive,
                SearchStrategy::Auto,
            ] {
                let plan = plan_single_disk_recovery(layout, failed, strategy);
                assert_eq!(plan.choices.len(), layout.rows(), "{name}");
                // Reads never touch the failed disk.
                assert!(plan.reads.iter().all(|c| c.col != failed), "{name}");

                // Execute the plan and compare bytes.
                let mut broken = pristine.clone();
                broken.erase_col(failed);
                for (cell, chain_id) in &plan.choices {
                    let sources: Vec<_> = layout
                        .chain(*chain_id)
                        .cells()
                        .filter(|c| c != cell)
                        .collect();
                    let val = broken.xor_of(sources);
                    broken.set_element(*cell, &val);
                }
                assert_eq!(broken, pristine, "{name}: disk {failed} ({strategy:?})");
            }
        }
    }
}

#[test]
fn shipped_table2_trace_matches_the_paper() {
    // The trace file shipped in traces/ must parse to exactly the Table II
    // constants the workloads crate hard-codes.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../traces/table2.trace");
    let text = std::fs::read_to_string(path).expect("traces/table2.trace exists");
    let parsed = raid_workloads::textio::parse_trace(&text).unwrap();
    let reference = raid_workloads::table2_trace();
    assert_eq!(parsed.patterns, reference.patterns);
    assert_eq!(parsed.name, reference.name);
}

#[test]
fn structural_invariants_hold_for_all_codes() {
    for p in [5usize, 7, 11] {
        for code in all_codes(p) {
            let name = code.name().to_string();
            let layout = code.layout();
            assert!(
                invariants::all_single_failures_decodable(layout),
                "{name} p={p}"
            );
            assert_eq!(
                invariants::find_undecodable_pair(layout),
                None,
                "{name} p={p} must be MDS"
            );
            // EVENODD's S-adjusted diagonals and Liberation's extra-one
            // coding matrices legitimately take two packets from one disk.
            assert!(
                invariants::chains_hit_columns_once(layout)
                    || name == "EVENODD"
                    || name == "Liberation",
                "{name} p={p}: chains revisit columns"
            );
        }
    }
}
