//! Tier-1 gate for the concurrency & crash-consistency auditors: every
//! registered code must prove partition-hazard freedom and all-crash-prefix
//! journal atomicity, deliberately corrupted plans/journals must be rejected
//! naming the offending address range or crash index, and the executor's
//! concurrent protocols must pass exhaustive schedule exploration.

use raid_array::partition::PartitionMap;
use raid_verify::hazard::{
    audit_partition_hazards, model_encode_batch, prove_layout_hazard_free, HazardError,
};
use raid_verify::journal::{
    prove_batch_atomicity, prove_layout_journal, JournalCoverage, JournalError, JournalMode,
};
use raid_verify::schedules::check_all_models;

/// The headline acceptance check: all 8 codes × p ∈ {5, 7} prove both
/// cross-partition footprint disjointness (every modeled batched path)
/// and all-old-or-all-new crash atomicity (every crash prefix, both
/// journal protocols). The full default-prime sweep runs in `make lint`
/// via `hvraid lint --all --hazards --journal`.
#[test]
fn every_code_proves_hazard_freedom_and_crash_atomicity() {
    for name in raid_verify::CODE_NAMES {
        for p in [5usize, 7] {
            let code = raid_verify::build(name, p).unwrap_or_else(|e| panic!("{e}"));
            let layout = code.layout();
            let h = prove_layout_hazard_free(layout)
                .unwrap_or_else(|e| panic!("{name} p={p} hazard: {e}"));
            assert_eq!(h.batches, 5, "{name} p={p}");
            assert!(h.partitions >= 2, "{name} p={p}");
            // The machine-readable report must carry every partition's
            // footprint and a zero hazard count.
            let json = h.encode_report.to_json();
            assert!(json.contains("\"hazards\":0"), "{name} p={p}: {json}");
            assert!(json.contains("\"partition\":0"), "{name} p={p}: {json}");

            let j = prove_layout_journal(layout)
                .unwrap_or_else(|e| panic!("{name} p={p} journal: {e}"));
            assert_eq!(j.batches, 6, "{name} p={p}");
            assert!(j.crash_points > 0, "{name} p={p}");
        }
    }
}

/// Acceptance criterion: a deliberately corrupted plan — one stripe's op
/// made to write an address owned by another partition — is rejected, and
/// the failure names the offending disk and `[start, end)` address range.
#[test]
fn overlapping_partition_write_is_rejected_naming_the_address_range() {
    let code = raid_verify::build("hv", 5).unwrap();
    let layout = code.layout();
    let map = PartitionMap::build(5, 3); // ranges [0,2) [2,4) [4,5)
    let mut ops = model_encode_batch(layout, 5);

    // Make the last stripe's op (partition 2) also write the first
    // stripe's first parity address (partition 0).
    let (cell, addr) = ops[0].parity_writes[0];
    ops[4].parity_writes.push((cell, addr));

    let err = audit_partition_hazards(&map, &ops, layout.cols()).unwrap_err();
    match &err {
        HazardError::WriteWrite { a, b, disk, range } => {
            assert_eq!((*a, *b), (0, 2), "{err}");
            assert_eq!(*disk, addr.disk, "{err}");
            assert!(range.contains(&addr.index), "{err}");
        }
        other => panic!("expected WriteWrite, got {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains(&format!("disk {}", addr.disk)), "{msg}");
    assert!(msg.contains(&format!("[{}, {})", addr.index, addr.index + 1)), "{msg}");
}

/// A read hoisted across another op's write — the stale-read shape that
/// batched phase separation would mis-serve — is likewise rejected with
/// both ops, both partitions, and the address range named.
#[test]
fn stale_cross_op_read_is_rejected_naming_both_ops() {
    let code = raid_verify::build("hv", 5).unwrap();
    let layout = code.layout();
    let map = PartitionMap::build(5, 3);
    let mut ops = model_encode_batch(layout, 5);

    // Op 3 now reads an address op 0 writes.
    let (cell, addr) = ops[0].parity_writes[0];
    ops[3].reads.push((cell, addr));

    let err = audit_partition_hazards(&map, &ops, layout.cols()).unwrap_err();
    match &err {
        HazardError::ReadWrite { reader_op, writer_op, disk, range, .. } => {
            assert_eq!((*reader_op, *writer_op), (3, 0), "{err}");
            assert_eq!(*disk, addr.disk, "{err}");
            assert!(range.contains(&addr.index), "{err}");
        }
        other => panic!("expected ReadWrite, got {other}"),
    }
    assert!(err.to_string().contains("op 3"), "{err}");
}

/// Acceptance criterion: a deliberately corrupted journal — one undo
/// record dropped — fails the crash-prefix sweep, and the rejection names
/// the crash index and the unrestorable address, in both protocols.
#[test]
fn dropped_undo_record_is_rejected_naming_the_crash_index() {
    let code = raid_verify::build("hv", 5).unwrap();
    let layout = code.layout();
    let ops = model_encode_batch(layout, 3);
    let (_, dropped_addr) = ops[0].parity_writes[0];

    for mode in [JournalMode::WholeBatch, JournalMode::PerOp] {
        let err = prove_batch_atomicity(&ops, mode, JournalCoverage::DropEntry(0))
            .expect_err("a journal missing an undo record must not prove");
        match &err {
            JournalError::MissingUndo { crash_index, addr, .. } => {
                // The first crash prefix that completed the unjournaled
                // write (write 0) cannot be rolled back.
                assert_eq!(*crash_index, 1, "{err}");
                assert_eq!(*addr, dropped_addr, "{err}");
            }
            other => panic!("{mode}: expected MissingUndo, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("crash index 1"), "{msg}");
        assert!(msg.contains(&format!("disk {}", dropped_addr.disk)), "{msg}");
    }
}

/// The executor's three concurrent protocols — the work-stealing cursor,
/// the ledger-shard merge, and the per-disk queue hand-off — pass
/// exhaustive interleaving exploration.
#[test]
fn executor_protocols_pass_exhaustive_schedule_exploration() {
    let results = check_all_models().unwrap_or_else(|e| panic!("{e}"));
    let names: Vec<&str> = results.iter().map(|r| r.model).collect();
    assert_eq!(names, ["cursor", "merge", "queue"]);
    for r in &results {
        assert!(r.configs > 0, "{}: no configurations", r.model);
        assert!(r.schedules > 1, "{}: exploration did not branch", r.model);
        assert!(r.max_depth > 0, "{}", r.model);
    }
}
