//! The optimizer's end-to-end contract, on bytes: for every registered
//! code, an optimized plan — encode or double-erasure decode — produces
//! exactly the stripe the unoptimized plan produces, the optimizer never
//! increases a plan's source reads, and the independent symbolic prover
//! in raid-verify certifies every pair this suite executes.

use proptest::prelude::*;

use integration::all_codes;
use raid_core::{decoder, Cell, Stripe, XorPlan};
use raid_math::xor::L1_TILE_BYTES;
use raid_verify::plan_check::prove_equivalent;

fn verify_prime() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![5usize, 7, 13, 17])
}

/// Erase `cols` entirely and rebuild through the compiled, optimized
/// decode plan; returns false if the pattern is not decodable (never the
/// case for the column pairs this suite drives).
fn rebuild_through_optimized(
    stripe: &mut Stripe,
    layout: &raid_core::Layout,
    cols: &[usize],
) -> (XorPlan, XorPlan) {
    let lost: Vec<Cell> = cols
        .iter()
        .flat_map(|&c| (0..layout.rows()).map(move |r| Cell::new(r, c)))
        .collect();
    for &cell in &lost {
        stripe.erase(cell);
    }
    let plan = decoder::plan_decode(layout, &lost).expect("<= 2 lost columns is decodable");
    let compiled = XorPlan::compile_decode(layout, &plan);
    let optimized = compiled.optimized();
    optimized.execute(stripe);
    (compiled, optimized)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Optimized encode == reference encode, byte for byte, for every
    /// code at every verification prime — both plan forms the layout
    /// cache chooses between, plus the cached winner itself.
    #[test]
    fn optimized_encode_matches_reference_bytes(
        p in verify_prime(),
        seed in any::<u64>(),
        element in prop::sample::select(vec![1usize, 16, 64, 129]),
    ) {
        for code in all_codes(p) {
            let layout = code.layout();
            let mut reference = Stripe::for_layout(layout, element);
            reference.fill_data_seeded(layout, seed);
            let dirty = reference.clone();
            reference.encode_reference(layout);

            for plan in [
                XorPlan::compile_encode(layout).optimized(),
                XorPlan::compile_encode_expanded(layout).optimized(),
                layout.encode_plan().clone(),
            ] {
                let mut got = dirty.clone();
                plan.execute(&mut got);
                prop_assert_eq!(&got, &reference, "{} at p = {}", code.name(), p);
            }
        }
    }

    /// Every single- and double-column erasure rebuilt through the
    /// optimized compiled decode plan restores the original stripe, and
    /// the symbolic prover certifies the optimized plan against the
    /// unoptimized compile it came from.
    #[test]
    fn optimized_decode_recovers_erased_columns(
        p in verify_prime(),
        seed in any::<u64>(),
        lost in prop::sample::select(vec![(0usize, 1usize), (0, 2), (1, 3), (2, 4)]),
    ) {
        for code in all_codes(p) {
            let layout = code.layout();
            let disks = layout.cols();
            let (a, b) = (lost.0 % disks, lost.1 % disks);
            let cols: Vec<usize> = if a == b { vec![a] } else { vec![a, b] };

            let mut original = Stripe::for_layout(layout, 24);
            original.fill_data_seeded(layout, seed);
            original.encode(layout);

            let mut wounded = original.clone();
            let (compiled, optimized) =
                rebuild_through_optimized(&mut wounded, layout, &cols);
            prop_assert_eq!(
                &wounded, &original,
                "{} at p = {} lost cols {:?}", code.name(), p, &cols
            );

            let proof = prove_equivalent(&compiled, &optimized)
                .map_err(|e| TestCaseError::fail(
                    format!("{} at p = {} lost {:?}: {e}", code.name(), p, &cols),
                ))?;
            prop_assert!(
                proof.reads_after <= proof.reads_before,
                "{} at p = {}: optimizer raised decode reads {} -> {}",
                code.name(), p, proof.reads_before, proof.reads_after
            );
        }
    }
}

/// The optimizer never increases `num_source_reads`, for either encode
/// form of every code at every verification prime — the monotonicity the
/// `layout.encode_plan()` best-of cache and the lint gate both rely on.
#[test]
fn optimizer_never_increases_source_reads() {
    for p in [5usize, 7, 13, 17] {
        for code in all_codes(p) {
            let layout = code.layout();
            for (form, plan) in [
                ("cascaded", XorPlan::compile_encode(layout)),
                ("expanded", XorPlan::compile_encode_expanded(layout)),
            ] {
                let optimized = plan.optimized();
                assert!(
                    optimized.num_source_reads() <= plan.num_source_reads(),
                    "{} at p = {p}: {form} encode reads {} -> {}",
                    code.name(),
                    plan.num_source_reads(),
                    optimized.num_source_reads()
                );
                prove_equivalent(&plan, &optimized).unwrap_or_else(|e| {
                    panic!("{} at p = {p}: {form} optimize unproven: {e}", code.name())
                });
            }
        }
    }
}

/// Elements larger than the L1 tile force the chunked execution path;
/// the tiled walk must still be byte-identical to the reference encoder
/// and to whole-op execution of the same plan.
#[test]
fn tiled_execution_matches_untiled_past_l1_tile() {
    let element = 2 * L1_TILE_BYTES + 512;
    for code in all_codes(7) {
        let layout = code.layout();
        let mut reference = Stripe::for_layout(layout, element);
        reference.fill_data_seeded(layout, 77);
        let dirty = reference.clone();
        reference.encode_reference(layout);

        let plan = layout.encode_plan();
        let mut tiled = dirty.clone();
        plan.execute(&mut tiled);
        let mut untiled = dirty;
        plan.execute_untiled(&mut untiled);

        assert_eq!(tiled, reference, "{} tiled vs reference", code.name());
        assert_eq!(untiled, reference, "{} untiled vs reference", code.name());
    }
}

/// Double-erasure decode at the headline prime, deterministically and
/// exhaustively over all column pairs: the optimized rebuild restores
/// every byte, including through temp-heavy plans (EVENODD's adjuster
/// chains produce dozens of scratch temps here).
#[test]
fn optimized_double_erasure_exhaustive_at_p13() {
    for code in all_codes(13) {
        let layout = code.layout();
        let disks = layout.cols();
        let mut original = Stripe::for_layout(layout, 16);
        original.fill_data_seeded(layout, 1313);
        original.encode(layout);

        for a in 0..disks {
            for b in (a + 1)..disks {
                let mut wounded = original.clone();
                rebuild_through_optimized(&mut wounded, layout, &[a, b]);
                assert_eq!(
                    wounded,
                    original,
                    "{} lost cols ({a}, {b})",
                    code.name()
                );
            }
        }
    }
}
