//! Acceptance for the self-healing volume: fixed-seed chaos campaigns of
//! at least 100 episodes per backend, including crash-at-every-undo-log-
//! point sweeps and latent-sector injections, must complete with zero
//! integrity violations, and crash-interrupted rebuilds must resume from
//! the persisted checkpoint rather than stripe 0.

use std::sync::Arc;

use hv_code::HvCode;
use raid_array::chaos::{self, ChaosConfig};
use raid_core::ArrayCode;

fn code() -> Arc<dyn ArrayCode> {
    Arc::new(HvCode::new(5).unwrap())
}

#[test]
fn chaos_hundred_episodes_per_backend_zero_violations() {
    let dir = std::env::temp_dir().join(format!("hvraid_chaos_accept_{}", std::process::id()));
    let cfg = ChaosConfig {
        seed: 0xACCE_97ED,
        episodes: 100,
        dir: Some(dir.clone()),
        crash_sweeps: true,
        ..ChaosConfig::default()
    };
    let report = match chaos::run(&code(), &cfg) {
        Ok(report) => report,
        Err(failure) => panic!("{failure}"),
    };
    let _ = std::fs::remove_dir_all(&dir);

    // 100 in-memory + 100 file-backed episodes, all verified end-to-end.
    assert_eq!(report.episodes, 200);
    assert!(report.verifications >= 200, "{report}");
    // The campaign actually exercised the failure machinery: dead disks,
    // transients (retry/backoff), latent sectors, and torn writes.
    assert!(report.faults_dead > 0, "{report}");
    assert!(report.faults_transient > 0, "{report}");
    assert!(report.faults_latent > 0, "{report}");
    assert!(report.faults_torn > 0, "{report}");
    // The crash sweeps walked every undo-log point of a boundary-crossing
    // write and observed at least one journal rollback on reopen…
    assert!(report.crash_points > 0, "{report}");
    assert!(report.journal_rollbacks > 0, "{report}");
    // …and at least one crash-interrupted rebuild resumed from a persisted
    // checkpoint (next_stripe > 0) instead of restarting at stripe 0.
    assert!(report.resumed_rebuilds > 0, "{report}");
}

#[test]
fn chaos_campaign_is_deterministic_per_seed() {
    let a = chaos::run(
        &code(),
        &ChaosConfig { seed: 7, episodes: 20, ..ChaosConfig::default() },
    )
    .unwrap();
    let b = chaos::run(
        &code(),
        &ChaosConfig { seed: 7, episodes: 20, ..ChaosConfig::default() },
    )
    .unwrap();
    assert_eq!(a, b);
}
