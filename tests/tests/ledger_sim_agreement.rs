//! Property: the per-disk I/O ledger a replayed trace accumulates is
//! exactly the per-disk request counts the disk simulator was handed.
//! Both consume the same [`raid_core::io::RequestSet`] stream from the
//! pipeline, so any divergence means an accounting path was bypassed.

use std::sync::Arc;

use disk_sim::{DiskArray, DiskProfile};
use proptest::prelude::*;
use raid_array::{replay_read_patterns, replay_write_trace, RaidVolume};
use raid_core::ArrayCode;
use raid_workloads::{ReadPattern, WritePattern, WriteTrace};

fn volume() -> RaidVolume {
    let code: Arc<dyn ArrayCode> = Arc::new(hv_code::HvCode::new(7).unwrap());
    RaidVolume::in_memory(code, 6, 8)
}

proptest! {
    #[test]
    fn write_replay_ledger_matches_simulator_served(
        patterns in prop::collection::vec((0usize..150, 1usize..12, 1u32..3), 1..10),
    ) {
        let mut v = volume();
        let sim = DiskArray::new(v.disks(), DiskProfile::savvio_10k());
        let trace = WriteTrace {
            name: "prop".into(),
            patterns: patterns
                .into_iter()
                .map(|(start, len, freq)| WritePattern { start, len, freq })
                .collect(),
        };
        let out = replay_write_trace(&mut v, sim, &trace).unwrap();
        prop_assert_eq!(out.served.clone(), out.ledger.per_disk_totals());
        // And the cumulative simulator state agrees with the cumulative ledger.
        prop_assert_eq!(v.sim().unwrap().served(), v.ledger().per_disk_totals());
    }

    #[test]
    fn degraded_read_replay_ledger_matches_simulator_served(
        seed in any::<u64>(),
        reads in prop::collection::vec((0usize..150, 1usize..15), 1..12),
        disk in 0usize..6,
    ) {
        let mut v = volume();
        let data: Vec<u8> = (0..v.data_elements() * 8)
            .map(|i| (i as u64 ^ seed) as u8)
            .collect();
        v.write(0, &data).unwrap();
        v.fail_disk(disk % v.disks()).unwrap();
        v.reset_ledger();
        let sim = DiskArray::new(v.disks(), DiskProfile::savvio_10k());
        let pats: Vec<ReadPattern> = reads
            .into_iter()
            .map(|(start, len)| ReadPattern { start, len })
            .collect();
        let out = replay_read_patterns(&mut v, sim, &pats).unwrap();
        // The replay window's ledger is exactly what the simulator served
        // (the sim was attached with a zeroed history).
        prop_assert_eq!(
            v.sim().unwrap().served(),
            out.ledger.per_disk_totals()
        );
    }
}
