//! Property tests over the reliability models: MTTDL must respond to its
//! inputs with the right sign, for every registered code.
//!
//! The invariants pinned here are what makes the measured-MTTR feedback
//! loop in `raid-fleet` trustworthy: slower rebuilds (lower throttle
//! rate) must never *raise* the predicted MTTDL, more spares must never
//! lower it, and more disks must never raise it.

use proptest::prelude::*;

use disk_sim::DiskProfile;
use raid_array::mttr::{estimate_rebuild, estimate_rebuild_throttled};
use raid_array::reliability::{mttdl_from_inputs, MttdlInputs};
use raid_verify::{build, CODE_NAMES};

const MS_TO_HOURS: f64 = 1.0 / 3_600_000.0;
const STRIPES: usize = 64;

fn registry_code() -> impl Strategy<Value = &'static str> {
    prop::sample::select(CODE_NAMES.to_vec())
}

fn small_prime() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![5usize, 13])
}

/// MTTDL of `code` with the rebuild windows of a throttled rebuild at
/// `rate` and the given spare pool.
fn mttdl_at(
    code: &dyn raid_core::ArrayCode,
    rate: f64,
    spares: usize,
    spare_replenish_h: f64,
) -> f64 {
    let est = estimate_rebuild_throttled(code, STRIPES, DiskProfile::savvio_10k(), rate);
    mttdl_from_inputs(&MttdlInputs {
        disks: code.layout().cols(),
        mttf_hours: 1.0e6,
        rebuild_one_h: est.single_ms * MS_TO_HOURS,
        rebuild_two_h: est.double_ms * MS_TO_HOURS,
        spares,
        spare_replenish_h,
    })
    .mttdl_h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A faster rebuild (higher throttle rate) strictly shortens the
    /// exposure window, so MTTDL strictly rises with the rate.
    #[test]
    fn mttdl_rises_with_rebuild_rate(
        name in registry_code(),
        p in small_prime(),
        lo_pct in 5u32..90,
        step_pct in 5u32..10,
    ) {
        // Some registry codes reject one of the primes; skip those.
        if let Ok(code) = build(name, p) {
            let lo = lo_pct as f64 / 100.0;
            let hi = ((lo_pct + step_pct) as f64 / 100.0).min(1.0);
            let slow = mttdl_at(code.as_ref(), lo, 1, 24.0);
            let fast = mttdl_at(code.as_ref(), hi, 1, 24.0);
            prop_assert!(
                fast > slow,
                "{name} p={p}: MTTDL fell from {slow:.3e} to {fast:.3e} \
                 as rate rose {lo:.2} -> {hi:.2}"
            );
        }
    }

    /// A deeper spare pool shortens the expected wait for a replacement,
    /// so MTTDL rises (strictly, while the replenish delay is nonzero).
    #[test]
    fn mttdl_rises_with_spare_count(
        name in registry_code(),
        p in small_prime(),
        spares in 0usize..6,
    ) {
        if let Ok(code) = build(name, p) {
            let shallow = mttdl_at(code.as_ref(), 1.0, spares, 24.0);
            let deep = mttdl_at(code.as_ref(), 1.0, spares + 1, 24.0);
            prop_assert!(
                deep > shallow,
                "{name} p={p}: MTTDL fell from {shallow:.3e} to {deep:.3e} \
                 as spares rose {spares} -> {}", spares + 1
            );
        }
    }

    /// More disks mean more ways to take the second and third hit: with
    /// the repair windows held fixed, MTTDL strictly falls as the array
    /// widens.
    #[test]
    fn mttdl_falls_with_disk_count(
        disks in 4usize..64,
        rebuild_tenths_h in 5u32..480,
        replenish_h in 0u32..96,
        spares in 0usize..4,
    ) {
        let rebuild_one_h = rebuild_tenths_h as f64 / 10.0;
        let replenish = replenish_h as f64;
        let at = |disks: usize| {
            mttdl_from_inputs(&MttdlInputs {
                disks,
                mttf_hours: 1.0e6,
                rebuild_one_h,
                rebuild_two_h: rebuild_one_h * 1.5,
                spares,
                spare_replenish_h: replenish,
            })
            .mttdl_h
        };
        prop_assert!(at(disks + 1) < at(disks));
    }

    /// The same code at a larger prime has both more disks and a longer
    /// rebuild, so its MTTDL is strictly worse end to end.
    #[test]
    fn wider_arrays_of_the_same_code_are_less_reliable(
        name in registry_code(),
        spares in 0usize..4,
    ) {
        if let (Ok(narrow), Ok(wide)) = (build(name, 5), build(name, 13)) {
            let n = mttdl_at(narrow.as_ref(), 1.0, spares, 24.0);
            let w = mttdl_at(wide.as_ref(), 1.0, spares, 24.0);
            prop_assert!(w < n, "{name}: p=13 MTTDL {w:.3e} !< p=5 {n:.3e}");
        }
    }

    /// The throttled estimate degenerates to the plain one at rate 1.
    #[test]
    fn throttled_estimate_is_exact_at_full_rate(
        name in registry_code(),
        p in small_prime(),
    ) {
        if let Ok(code) = build(name, p) {
            let profile = DiskProfile::savvio_10k();
            let full = estimate_rebuild(code.as_ref(), STRIPES, profile);
            let throttled =
                estimate_rebuild_throttled(code.as_ref(), STRIPES, profile, 1.0);
            prop_assert_eq!(full, throttled);
        }
    }
}
