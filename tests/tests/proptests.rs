//! Property-based tests over the whole stack: random primes, random data,
//! random failures and random write patterns.

use std::sync::Arc;

use proptest::prelude::*;

use hv_code::HvCode;
use integration::all_codes;
use raid_array::{CacheConfig, FileBackend, RaidVolume};
use raid_core::{decoder, ArrayCode, Stripe};
use raid_rs::{CauchyRs, PqRaid6};

fn small_prime() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![5usize, 7, 11, 13])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hv_double_failure_roundtrip(
        p in small_prime(),
        seed in any::<u64>(),
        pair in (0usize..64, 0usize..64),
    ) {
        let code = HvCode::new(p).unwrap();
        let layout = code.layout();
        let n = layout.cols();
        let f1 = pair.0 % n;
        let mut f2 = pair.1 % n;
        if f1 == f2 {
            f2 = (f2 + 1) % n;
        }
        let mut stripe = Stripe::for_layout(layout, 24);
        stripe.fill_data_seeded(layout, seed);
        code.encode(&mut stripe);
        let pristine = stripe.clone();
        stripe.erase_col(f1);
        stripe.erase_col(f2);
        code.repair_double_disk(&mut stripe, f1, f2).unwrap();
        prop_assert_eq!(stripe, pristine);
    }

    #[test]
    fn random_cell_erasures_up_to_two_columns_decode(
        p in small_prime(),
        seed in any::<u64>(),
        picks in prop::collection::vec((0usize..32, 0usize..32), 1..6),
        cols in (0usize..64, 0usize..64),
    ) {
        // Erase up to 5 random cells confined to at most two columns —
        // always within RAID-6 tolerance.
        let code = HvCode::new(p).unwrap();
        let layout = code.layout();
        let n = layout.cols();
        let (ca, cb) = (cols.0 % n, cols.1 % n);
        let mut stripe = Stripe::for_layout(layout, 16);
        stripe.fill_data_seeded(layout, seed);
        code.encode(&mut stripe);
        let pristine = stripe.clone();

        let mut lost = Vec::new();
        for (r, c) in picks {
            let cell = raid_core::Cell::new(r % layout.rows(), if c % 2 == 0 { ca } else { cb });
            if !lost.contains(&cell) {
                lost.push(cell);
            }
        }
        for &c in &lost {
            stripe.erase(c);
        }
        decoder::decode(&mut stripe, layout, &lost).unwrap();
        prop_assert_eq!(stripe, pristine);
    }

    #[test]
    fn volume_random_writes_keep_parity_consistent(
        seed in any::<u64>(),
        writes in prop::collection::vec((0usize..200, 1usize..12), 1..8),
    ) {
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(7).unwrap());
        let element = 8usize;
        let mut v = RaidVolume::in_memory(code, 10, element);
        let cap = v.data_elements();
        let mut shadow = vec![0u8; cap * element];
        for (i, (start, len)) in writes.into_iter().enumerate() {
            let start = start % cap;
            let len = len.min(cap - start);
            let data = integration::payload(len * element, seed ^ i as u64);
            v.write(start, &data).unwrap();
            shadow[start * element..(start + len) * element].copy_from_slice(&data);
            prop_assert!(v.verify_all(), "parity broken after write {}", i);
        }
        let (bytes, _) = v.read(0, cap).unwrap();
        prop_assert_eq!(bytes, shadow);
    }

    #[test]
    fn degraded_read_equals_healthy_read(
        seed in any::<u64>(),
        start in 0usize..100,
        len in 1usize..20,
        disk in 0usize..6,
    ) {
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(7).unwrap());
        let element = 8usize;
        let mut v = RaidVolume::in_memory(code, 6, element);
        let cap = v.data_elements();
        let start = start % cap;
        let len = len.min(cap - start);
        let data = integration::payload(cap * element, seed);
        v.write(0, &data).unwrap();
        let (healthy, _) = v.read(start, len).unwrap();
        v.fail_disk(disk % v.disks()).unwrap();
        let (degraded, receipt) = v.read(start, len).unwrap();
        prop_assert_eq!(&healthy, &degraded);
        prop_assert!(receipt.total_reads() as usize >= 1);
        prop_assert_eq!(
            &healthy[..],
            &data[start * element..(start + len) * element]
        );
    }

    #[test]
    fn rs_constructions_agree_on_recoverability(
        k in 2usize..10,
        seed in any::<u64>(),
        lost in (0usize..12, 0usize..12),
    ) {
        // Both RS flavours must recover the same stripes from the same
        // double erasures.
        let len = 24usize;
        let data: Vec<Vec<u8>> = (0..k).map(|i| integration::payload(len, seed ^ i as u64)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();

        let pq = PqRaid6::new(k).unwrap();
        let (pbuf, qbuf) = pq.encode(&refs).unwrap();
        let mut pq_shards: Vec<Vec<u8>> = data.clone();
        pq_shards.push(pbuf);
        pq_shards.push(qbuf);

        let cauchy = CauchyRs::raid6(k).unwrap();
        let mut c_shards: Vec<Vec<u8>> = data.clone();
        c_shards.extend(cauchy.encode(&refs).unwrap());

        let n = k + 2;
        let a = lost.0 % n;
        let mut b = lost.1 % n;
        if a == b { b = (b + 1) % n; }

        let pq_truth = pq_shards.clone();
        let c_truth = c_shards.clone();
        pq_shards[a].fill(0);
        pq_shards[b].fill(0);
        c_shards[a].fill(0);
        c_shards[b].fill(0);

        let to_shard = |i: usize| if i < k { raid_rs::pq::Shard::Data(i) } else if i == k { raid_rs::pq::Shard::P } else { raid_rs::pq::Shard::Q };
        pq.reconstruct(&mut pq_shards, &[to_shard(a), to_shard(b)]).unwrap();
        cauchy.reconstruct(&mut c_shards, &[a, b]).unwrap();
        prop_assert_eq!(pq_shards, pq_truth);
        prop_assert_eq!(c_shards, c_truth);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_code_survives_random_double_failure(
        seed in any::<u64>(),
        pair in (0usize..64, 0usize..64),
    ) {
        for code in all_codes(7) {
            let layout = code.layout();
            let n = layout.cols();
            let f1 = pair.0 % n;
            let mut f2 = pair.1 % n;
            if f1 == f2 { f2 = (f2 + 1) % n; }
            let mut stripe = Stripe::for_layout(layout, 16);
            stripe.fill_data_seeded(layout, seed);
            code.encode(&mut stripe);
            let pristine = stripe.clone();
            stripe.erase_col(f1);
            stripe.erase_col(f2);
            let mut lost = layout.cells_in_col(f1);
            lost.extend(layout.cells_in_col(f2));
            decoder::decode(&mut stripe, layout, &lost).unwrap();
            prop_assert_eq!(stripe, pristine, "{} ({},{})", code.name(), f1, f2);
        }
    }

    #[test]
    fn cached_volume_is_byte_identical_to_uncached(
        seed in any::<u64>(),
        ops in prop::collection::vec((0usize..3, 0usize..300, 1usize..10), 4..14),
        fail_pick in 0usize..64,
        fail_at in 0usize..14,
        flush_at in 0usize..14,
    ) {
        // A write-back cached volume must be observationally identical to
        // an uncached twin under mixed reads/writes, through a
        // mid-workload disk failure, a mid-workload explicit flush, a
        // tiny budget that forces constant flushing and eviction, and
        // finally flush-on-drop.
        for p in [5usize, 13] {
            for code in all_codes(p) {
                let element = 8usize;
                let stripes = 4usize;
                let mut plain = RaidVolume::in_memory(Arc::clone(&code), stripes, element);
                let mut cached = RaidVolume::in_memory(Arc::clone(&code), stripes, element);
                cached.enable_cache(CacheConfig { max_stripes: 2, dirty_high_water: 1 });
                let cap = plain.data_elements();
                for (i, &(kind, start, len)) in ops.iter().enumerate() {
                    let start = start % cap;
                    let len = len.min(cap - start);
                    if i == fail_at % ops.len() {
                        let d = fail_pick % plain.disks();
                        plain.fail_disk(d).unwrap();
                        cached.fail_disk(d).unwrap();
                    }
                    if kind < 2 {
                        let data = integration::payload(len * element, seed ^ ((i as u64) << 8));
                        plain.write(start, &data).unwrap();
                        cached.write(start, &data).unwrap();
                    } else {
                        let (a, _) = plain.read(start, len).unwrap();
                        let (b, _) = cached.read(start, len).unwrap();
                        prop_assert_eq!(a, b, "{} p={p} read {i} diverged", code.name());
                    }
                    if i == flush_at % ops.len() {
                        cached.flush().unwrap();
                    }
                }
                // Heal both twins (a rebuild under a dirty cache must
                // reconstruct the on-disk image, not the cached one),
                // then the arrays must agree byte-for-byte and verify.
                plain.rebuild().unwrap();
                cached.rebuild().unwrap();
                let (truth, _) = plain.read(0, cap).unwrap();
                let (mirror, _) = cached.read(0, cap).unwrap();
                prop_assert_eq!(&truth, &mirror, "{} p={p} final image diverged", code.name());
                prop_assert!(cached.verify_all(), "{} p={p} parity broken", code.name());

                // Flush-on-drop: replay the final image into a file-backed
                // cached volume, drop it with every stripe dirty, reopen
                // uncached, and the bytes must have made it to disk.
                let layout = code.layout();
                let dir = std::env::temp_dir().join(format!(
                    "hv-cacheprop-{}-{p}-{}",
                    code.name().replace(|c: char| !c.is_ascii_alphanumeric(), "_"),
                    std::process::id(),
                ));
                let be = FileBackend::create(&dir, layout.cols(), stripes * layout.rows(), element)
                    .unwrap();
                let mut fv =
                    RaidVolume::new(Arc::clone(&code), stripes, element, Box::new(be)).unwrap();
                fv.enable_cache(CacheConfig::default());
                fv.write(0, &truth).unwrap();
                prop_assert!(fv.cache_dirty_stripes() > 0, "drop test needs dirty state");
                drop(fv);
                let be = FileBackend::open(&dir).unwrap();
                let mut fv = RaidVolume::open(Arc::clone(&code), Box::new(be), false).unwrap();
                let (persisted, _) = fv.read(0, cap).unwrap();
                prop_assert_eq!(&truth, &persisted, "{} p={p} lost dirty cache on drop", code.name());
                drop(fv);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}
