//! Every code's layout must survive a round trip through the text spec
//! format — dump, parse, and keep the exact chain structure and MDS
//! property.

use integration::all_codes;
use raid_core::spec::{format_layout, parse_layout};
use raid_core::{decoder, Stripe};

#[test]
fn every_layout_round_trips_through_spec() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        let original = code.layout();
        let spec = format_layout(original);
        let parsed = parse_layout(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(parsed.rows(), original.rows(), "{name}");
        assert_eq!(parsed.cols(), original.cols(), "{name}");
        assert_eq!(parsed.chains(), original.chains(), "{name}");
        assert_eq!(parsed.render_ascii(), original.render_ascii(), "{name}");
    }
}

#[test]
fn parsed_layouts_still_decode() {
    // The parsed layout must behave identically: encode with the original,
    // decode with the parsed one.
    for code in all_codes(5) {
        let name = code.name().to_string();
        let original = code.layout();
        let parsed = parse_layout(&format_layout(original)).unwrap();

        let mut stripe = Stripe::for_layout(original, 16);
        stripe.fill_data_seeded(original, 13);
        stripe.encode(original);
        let pristine = stripe.clone();

        let (f1, f2) = (0, original.cols() - 1);
        stripe.erase_col(f1);
        stripe.erase_col(f2);
        let mut lost = parsed.cells_in_col(f1);
        lost.extend(parsed.cells_in_col(f2));
        decoder::decode(&mut stripe, &parsed, &lost)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(stripe, pristine, "{name}");
    }
}
