//! Bit-identity of the compiled-plan execution engine against the seed's
//! direct `xor_of`-per-chain encoder, across every code and several
//! primes — the property the whole plan-compile/execute refactor rests on.

use std::sync::Arc;

use proptest::prelude::*;

use raid_core::{ArrayCode, Stripe, XorPlan};

fn small_prime() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![5usize, 7, 11, 13, 17])
}

/// The codes under test at prime `p` — every registered code, Liberation
/// included now that its constructor uses the closed-form matrices
/// instead of a multi-second backtracking search.
fn codes(p: usize) -> Vec<Arc<dyn ArrayCode>> {
    integration::all_codes(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled plan (what `Stripe::encode` interprets) produces
    /// byte-identical parities to the reference per-chain `xor_of` walk.
    #[test]
    fn compiled_encode_matches_reference_for_every_code(
        p in small_prime(),
        seed in any::<u64>(),
        element in prop::sample::select(vec![1usize, 16, 24, 64, 129]),
    ) {
        for code in codes(p) {
            let layout = code.layout();
            let mut planned = Stripe::for_layout(layout, element);
            planned.fill_data_seeded(layout, seed);
            let mut reference = planned.clone();
            planned.encode(layout);
            reference.encode_reference(layout);
            prop_assert_eq!(&planned, &reference, "{} at p = {}", code.name(), p);
        }
    }

    /// Compiling the encode schedule is a pure function of the layout:
    /// a freshly compiled plan re-executed on dirty parities reproduces
    /// exactly what the cached plan computed.
    #[test]
    fn fresh_plan_agrees_with_cached_plan(
        p in small_prime(),
        seed in any::<u64>(),
    ) {
        for code in codes(p) {
            let layout = code.layout();
            let mut cached = Stripe::for_layout(layout, 32);
            cached.fill_data_seeded(layout, seed);
            let mut fresh = cached.clone();
            cached.encode(layout);
            XorPlan::compile_encode(layout).execute(&mut fresh);
            prop_assert_eq!(&cached, &fresh, "{} at p = {}", code.name(), p);
        }
    }
}

/// Deterministic exhaustive check at the paper's headline configuration:
/// every code, both encode paths, several element sizes including ones
/// that defeat SIMD alignment (1, odd, prime-sized).
#[test]
fn encode_paths_agree_at_p13_all_element_shapes() {
    for element in [1usize, 7, 31, 64, 4096] {
        for code in codes(13) {
            let layout = code.layout();
            let mut planned = Stripe::for_layout(layout, element);
            planned.fill_data_seeded(layout, 99);
            let mut reference = planned.clone();
            planned.encode(layout);
            reference.encode_reference(layout);
            assert_eq!(
                planned,
                reference,
                "{} at element = {element}",
                code.name()
            );
        }
    }
}
