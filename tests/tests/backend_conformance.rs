//! Backend conformance: every [`raid_array::DiskBackend`] implementation
//! must be observationally identical under the volume's operation stream.
//! The suite runs the same lifecycle against the in-memory, file-per-disk,
//! and fault-injecting backends, and additionally proves that a
//! [`raid_array::FaultyBackend`] firing two mid-run failures still serves
//! every byte for every code at p ∈ {5, 7, 13}.

use std::sync::Arc;

use integration::{all_codes, payload};
use raid_array::{
    DiskBackend, DiskRequest, FaultPoint, FaultyBackend, FileBackend, MemBackend, RaidVolume,
};
use raid_core::ArrayCode;

const ELEMENT: usize = 16;
const STRIPES: usize = 2;

/// The three backend kinds under test. The faulty case here carries an
/// empty schedule — behavioural equivalence with its inner backend is part
/// of the conformance contract; injected faults get their own test below.
const BACKENDS: [&str; 3] = ["mem", "file", "faulty"];

/// Worker count for partitioned/batched paths, from `HV_THREADS` (the
/// `make threads-smoke` knob). Defaults to 1: the plain run stays the
/// plain run.
fn env_threads() -> usize {
    std::env::var("HV_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1).max(1)
}

fn make_backend(kind: &str, label: &str, disks: usize, epd: usize) -> Box<dyn DiskBackend> {
    match kind {
        "mem" => Box::new(MemBackend::new(disks, epd, ELEMENT)),
        "file" => {
            let dir = std::env::temp_dir().join(format!("hvraid_conformance_{label}"));
            let _ = std::fs::remove_dir_all(&dir);
            let mut be =
                FileBackend::create(dir, disks, epd, ELEMENT).expect("temp dir writable");
            be.set_io_threads(env_threads());
            Box::new(be)
        }
        "faulty" => Box::new(FaultyBackend::new(
            Box::new(MemBackend::new(disks, epd, ELEMENT)),
            Vec::new(),
        )),
        other => panic!("unknown backend kind {other}"),
    }
}

fn cleanup(kind: &str, label: &str) {
    if kind == "file" {
        let dir = std::env::temp_dir().join(format!("hvraid_conformance_{label}"));
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn volume_on(code: &Arc<dyn ArrayCode>, kind: &str, label: &str) -> RaidVolume {
    let layout = code.layout();
    let backend = make_backend(kind, label, layout.cols(), STRIPES * layout.rows());
    let mut v =
        RaidVolume::new(Arc::clone(code), STRIPES, ELEMENT, backend).expect("shape matches");
    if env_threads() > 1 {
        v.set_partitions(Some(env_threads()));
    }
    v
}

#[test]
fn write_read_roundtrip_on_every_backend() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        for kind in BACKENDS {
            let label = format!("rt_{kind}_{}", name.replace(' ', "_"));
            let mut v = volume_on(&code, kind, &label);
            let data = payload(v.data_elements() * ELEMENT, 3);
            v.write(0, &data).unwrap();
            assert!(v.verify_all(), "{name}/{kind}");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name}/{kind}: roundtrip");
            // Partial overwrite stays consistent too.
            let patch = payload(3 * ELEMENT, 17);
            v.write(2, &patch).unwrap();
            let (bytes, _) = v.read(2, 3).unwrap();
            assert_eq!(bytes, patch, "{name}/{kind}: partial overwrite");
            assert!(v.verify_all(), "{name}/{kind}: parity after overwrite");
            cleanup(kind, &label);
        }
    }
}

#[test]
fn degraded_read_equals_pre_failure_data_on_every_backend() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        for kind in BACKENDS {
            let label = format!("dr_{kind}_{}", name.replace(' ', "_"));
            let mut v = volume_on(&code, kind, &label);
            let data = payload(v.data_elements() * ELEMENT, 5);
            v.write(0, &data).unwrap();
            v.fail_disk(1).unwrap();
            v.fail_disk(v.disks() - 1).unwrap();
            let (bytes, io) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name}/{kind}: double-degraded read");
            assert!(io.total_reads() > 0, "{name}/{kind}");
            cleanup(kind, &label);
        }
    }
}

#[test]
fn rebuild_restores_verification_on_every_backend() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        for kind in BACKENDS {
            let label = format!("rb_{kind}_{}", name.replace(' ', "_"));
            let mut v = volume_on(&code, kind, &label);
            let data = payload(v.data_elements() * ELEMENT, 7);
            v.write(0, &data).unwrap();
            v.fail_disk(0).unwrap();
            v.fail_disk(v.disks() / 2).unwrap();
            assert!(!v.verify_all(), "{name}/{kind}: degraded must not verify");
            v.rebuild().unwrap();
            assert!(v.verify_all(), "{name}/{kind}: rebuild must restore parity");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name}/{kind}: post-rebuild read");
            cleanup(kind, &label);
        }
    }
}

#[test]
fn two_injected_faults_still_serve_reads_for_every_code_and_prime() {
    for p in [5usize, 7, 13] {
        for code in all_codes(p) {
            let name = code.name().to_string();
            let layout = code.layout();
            let disks = layout.cols();
            // Two faults firing mid-stream on distinct disks: one early
            // (during the initial write), one later (during reads).
            let schedule = vec![
                FaultPoint { at_op: 7, disk: 1 },
                FaultPoint { at_op: 60, disk: disks - 2 },
            ];
            let backend = FaultyBackend::new(
                Box::new(MemBackend::new(disks, STRIPES * layout.rows(), ELEMENT)),
                schedule,
            );
            let mut v = RaidVolume::new(Arc::clone(&code), STRIPES, ELEMENT, Box::new(backend))
                .expect("shape matches");
            let data = payload(v.data_elements() * ELEMENT, p as u64);
            v.write(0, &data).unwrap();
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name} p={p}: reads must survive 2 injected faults");
            assert!(
                v.failed_disks().len() <= 2,
                "{name} p={p}: at most the two scheduled faults may fire"
            );
            // The volume can still be brought back to health.
            v.rebuild().unwrap();
            assert!(v.verify_all(), "{name} p={p}: rebuild after injected faults");
        }
    }
}

#[test]
fn submit_batch_completions_conform_on_every_backend() {
    let disks = 5;
    let epd = 6;
    for kind in BACKENDS {
        let label = format!("sb_{kind}");
        let mut be = make_backend(kind, &label, disks, epd);
        for d in 0..disks {
            be.write(d, 0, &[d as u8 + 1; ELEMENT]).unwrap();
        }
        let reqs = vec![
            DiskRequest::Write { disk: 1, index: 2, data: vec![0xAB; ELEMENT] },
            DiskRequest::Read { disk: 0, index: 0 },
            // Read-after-write on the same disk within one batch: every
            // backend must preserve per-disk submission order.
            DiskRequest::Read { disk: 1, index: 2 },
            DiskRequest::Write { disk: 3, index: 5, data: vec![0xCD; ELEMENT] },
            DiskRequest::Read { disk: 3, index: 5 },
            DiskRequest::Read { disk: 4, index: 0 },
        ];
        let comps = be.submit_batch(&reqs);
        assert_eq!(comps.len(), reqs.len(), "{kind}: one completion per request");
        assert!(matches!(comps[0], Ok(None)), "{kind}: write completes without bytes");
        let bytes = |i: usize| comps[i].as_ref().unwrap().as_deref().unwrap().to_vec();
        assert_eq!(bytes(1), vec![1u8; ELEMENT], "{kind}: read sees prior single write");
        assert_eq!(bytes(2), vec![0xAB; ELEMENT], "{kind}: read-after-write in batch");
        assert_eq!(bytes(4), vec![0xCD; ELEMENT], "{kind}: read-after-write in batch");
        assert_eq!(bytes(5), vec![5u8; ELEMENT], "{kind}: untouched disk serves old data");
        // The batch is durable: later single reads see the batch's writes.
        let mut buf = vec![0u8; ELEMENT];
        be.read(1, 2, &mut buf).unwrap();
        assert_eq!(buf, vec![0xAB; ELEMENT], "{kind}: batch write is durable");
        cleanup(kind, &label);
    }
}

#[test]
fn partitioned_batch_ops_conform_on_every_backend() {
    let threads = env_threads().max(2);
    for code in all_codes(7) {
        let name = code.name().to_string();
        for kind in BACKENDS {
            let label = format!("pb_{kind}_{}", name.replace(' ', "_"));
            let mut v = volume_on(&code, kind, &label);
            v.set_partitions(Some(threads));
            let data = payload(v.data_elements() * ELEMENT, 29);
            v.write(0, &data).unwrap();
            let enc = v.encode_all(threads).unwrap();
            assert_eq!(enc.data_writes(), 0, "{name}/{kind}: encode writes parities only");
            assert!(v.verify_all(), "{name}/{kind}: partitioned encode keeps parity");
            v.fail_disk(0).unwrap();
            v.fail_disk(v.disks() - 1).unwrap();
            let reb = v.rebuild_all(threads).unwrap();
            assert!(reb.total_writes() > 0, "{name}/{kind}");
            assert!(v.verify_all(), "{name}/{kind}: partitioned rebuild restores parity");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name}/{kind}: bytes survive partitioned rebuild");
            cleanup(kind, &label);
        }
    }
}

#[test]
fn file_backend_persists_across_reopen() {
    let code = all_codes(7).remove(0); // HV
    let label = "persist";
    let mut v = volume_on(&code, "file", label);
    let data = payload(v.data_elements() * ELEMENT, 23);
    v.write(0, &data).unwrap();
    v.fail_disk(2).unwrap();
    drop(v);

    // Reopen: geometry, contents, and the failure marker all survive.
    let dir = std::env::temp_dir().join(format!("hvraid_conformance_{label}"));
    let backend = FileBackend::open(&dir).unwrap();
    let mut v = RaidVolume::open(Arc::clone(&code), Box::new(backend), false).unwrap();
    assert_eq!(v.stripes(), STRIPES);
    assert_eq!(v.failed_disks(), vec![2], "failure flag must persist");
    let (bytes, _) = v.read(0, v.data_elements()).unwrap();
    assert_eq!(bytes, data, "data must persist across reopen");
    v.rebuild().unwrap();
    assert!(v.verify_all());
    cleanup("file", label);
}
