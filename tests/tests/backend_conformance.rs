//! Backend conformance: every [`raid_array::DiskBackend`] implementation
//! must be observationally identical under the volume's operation stream.
//! The suite runs the same lifecycle against the in-memory, file-per-disk,
//! and fault-injecting backends, and additionally proves that a
//! [`raid_array::FaultyBackend`] firing two mid-run failures still serves
//! every byte for every code at p ∈ {5, 7, 13}.

use std::sync::Arc;

use integration::{all_codes, payload};
use raid_array::{DiskBackend, FaultPoint, FaultyBackend, FileBackend, MemBackend, RaidVolume};
use raid_core::ArrayCode;

const ELEMENT: usize = 16;
const STRIPES: usize = 2;

/// The three backend kinds under test. The faulty case here carries an
/// empty schedule — behavioural equivalence with its inner backend is part
/// of the conformance contract; injected faults get their own test below.
const BACKENDS: [&str; 3] = ["mem", "file", "faulty"];

fn make_backend(kind: &str, label: &str, disks: usize, epd: usize) -> Box<dyn DiskBackend> {
    match kind {
        "mem" => Box::new(MemBackend::new(disks, epd, ELEMENT)),
        "file" => {
            let dir = std::env::temp_dir().join(format!("hvraid_conformance_{label}"));
            let _ = std::fs::remove_dir_all(&dir);
            Box::new(FileBackend::create(dir, disks, epd, ELEMENT).expect("temp dir writable"))
        }
        "faulty" => Box::new(FaultyBackend::new(
            Box::new(MemBackend::new(disks, epd, ELEMENT)),
            Vec::new(),
        )),
        other => panic!("unknown backend kind {other}"),
    }
}

fn cleanup(kind: &str, label: &str) {
    if kind == "file" {
        let dir = std::env::temp_dir().join(format!("hvraid_conformance_{label}"));
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn volume_on(code: &Arc<dyn ArrayCode>, kind: &str, label: &str) -> RaidVolume {
    let layout = code.layout();
    let backend = make_backend(kind, label, layout.cols(), STRIPES * layout.rows());
    RaidVolume::new(Arc::clone(code), STRIPES, ELEMENT, backend).expect("shape matches")
}

#[test]
fn write_read_roundtrip_on_every_backend() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        for kind in BACKENDS {
            let label = format!("rt_{kind}_{}", name.replace(' ', "_"));
            let mut v = volume_on(&code, kind, &label);
            let data = payload(v.data_elements() * ELEMENT, 3);
            v.write(0, &data).unwrap();
            assert!(v.verify_all(), "{name}/{kind}");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name}/{kind}: roundtrip");
            // Partial overwrite stays consistent too.
            let patch = payload(3 * ELEMENT, 17);
            v.write(2, &patch).unwrap();
            let (bytes, _) = v.read(2, 3).unwrap();
            assert_eq!(bytes, patch, "{name}/{kind}: partial overwrite");
            assert!(v.verify_all(), "{name}/{kind}: parity after overwrite");
            cleanup(kind, &label);
        }
    }
}

#[test]
fn degraded_read_equals_pre_failure_data_on_every_backend() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        for kind in BACKENDS {
            let label = format!("dr_{kind}_{}", name.replace(' ', "_"));
            let mut v = volume_on(&code, kind, &label);
            let data = payload(v.data_elements() * ELEMENT, 5);
            v.write(0, &data).unwrap();
            v.fail_disk(1).unwrap();
            v.fail_disk(v.disks() - 1).unwrap();
            let (bytes, io) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name}/{kind}: double-degraded read");
            assert!(io.total_reads() > 0, "{name}/{kind}");
            cleanup(kind, &label);
        }
    }
}

#[test]
fn rebuild_restores_verification_on_every_backend() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        for kind in BACKENDS {
            let label = format!("rb_{kind}_{}", name.replace(' ', "_"));
            let mut v = volume_on(&code, kind, &label);
            let data = payload(v.data_elements() * ELEMENT, 7);
            v.write(0, &data).unwrap();
            v.fail_disk(0).unwrap();
            v.fail_disk(v.disks() / 2).unwrap();
            assert!(!v.verify_all(), "{name}/{kind}: degraded must not verify");
            v.rebuild().unwrap();
            assert!(v.verify_all(), "{name}/{kind}: rebuild must restore parity");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name}/{kind}: post-rebuild read");
            cleanup(kind, &label);
        }
    }
}

#[test]
fn two_injected_faults_still_serve_reads_for_every_code_and_prime() {
    for p in [5usize, 7, 13] {
        for code in all_codes(p) {
            let name = code.name().to_string();
            let layout = code.layout();
            let disks = layout.cols();
            // Two faults firing mid-stream on distinct disks: one early
            // (during the initial write), one later (during reads).
            let schedule = vec![
                FaultPoint { at_op: 7, disk: 1 },
                FaultPoint { at_op: 60, disk: disks - 2 },
            ];
            let backend = FaultyBackend::new(
                Box::new(MemBackend::new(disks, STRIPES * layout.rows(), ELEMENT)),
                schedule,
            );
            let mut v = RaidVolume::new(Arc::clone(&code), STRIPES, ELEMENT, Box::new(backend))
                .expect("shape matches");
            let data = payload(v.data_elements() * ELEMENT, p as u64);
            v.write(0, &data).unwrap();
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name} p={p}: reads must survive 2 injected faults");
            assert!(
                v.failed_disks().len() <= 2,
                "{name} p={p}: at most the two scheduled faults may fire"
            );
            // The volume can still be brought back to health.
            v.rebuild().unwrap();
            assert!(v.verify_all(), "{name} p={p}: rebuild after injected faults");
        }
    }
}

#[test]
fn file_backend_persists_across_reopen() {
    let code = all_codes(7).remove(0); // HV
    let label = "persist";
    let mut v = volume_on(&code, "file", label);
    let data = payload(v.data_elements() * ELEMENT, 23);
    v.write(0, &data).unwrap();
    v.fail_disk(2).unwrap();
    drop(v);

    // Reopen: geometry, contents, and the failure marker all survive.
    let dir = std::env::temp_dir().join(format!("hvraid_conformance_{label}"));
    let backend = FileBackend::open(&dir).unwrap();
    let mut v = RaidVolume::open(Arc::clone(&code), Box::new(backend), false).unwrap();
    assert_eq!(v.stripes(), STRIPES);
    assert_eq!(v.failed_disks(), vec![2], "failure flag must persist");
    let (bytes, _) = v.read(0, v.data_elements()).unwrap();
    assert_eq!(bytes, data, "data must persist across reopen");
    v.rebuild().unwrap();
    assert!(v.verify_all());
    cleanup("file", label);
}
