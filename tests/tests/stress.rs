//! Lifecycle stress: random interleavings of writes, disk failures,
//! degraded writes/reads, rebuilds and scrubs, validated against a shadow
//! byte array after every step.

use std::sync::Arc;

use proptest::prelude::*;

use hv_code::HvCode;
use integration::payload;
use raid_array::RaidVolume;
use raid_core::{ArrayCode, Cell};

#[derive(Debug, Clone)]
enum Op {
    Write { start: usize, len: usize, seed: u64 },
    FailDisk { disk: usize },
    Rebuild,
    ReadCheck { start: usize, len: usize },
    Corrupt { stripe: usize, row: usize, col: usize },
    Scrub,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..500, 1usize..16, any::<u64>())
            .prop_map(|(start, len, seed)| Op::Write { start, len, seed }),
        (0usize..8).prop_map(|disk| Op::FailDisk { disk }),
        Just(Op::Rebuild),
        (0usize..500, 1usize..16).prop_map(|(start, len)| Op::ReadCheck { start, len }),
        (0usize..8, 0usize..8, 0usize..8)
            .prop_map(|(stripe, row, col)| Op::Corrupt { stripe, row, col }),
        Just(Op::Scrub),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn volume_survives_random_lifecycles(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(7).unwrap());
        let element = 8usize;
        let stripes = 6usize;
        let mut v = RaidVolume::in_memory(Arc::clone(&code), stripes, element);
        let cap = v.data_elements();
        let mut shadow = vec![0u8; cap * element];
        let mut corrupted = false;

        for op in ops {
            match op {
                Op::Write { start, len, seed } => {
                    // An unscrubbed corruption poisons incremental parity
                    // updates (real controllers scrub before trusting RMW);
                    // the model mirrors that discipline.
                    if corrupted {
                        continue;
                    }
                    let start = start % cap;
                    let len = len.min(cap - start);
                    let data = payload(len * element, seed);
                    // Degraded writes are legal; three failures cannot
                    // happen through the API.
                    v.write(start, &data).unwrap();
                    shadow[start * element..(start + len) * element].copy_from_slice(&data);
                }
                Op::FailDisk { disk } => {
                    if corrupted {
                        continue; // rebuilds would launder the corruption
                    }
                    let disk = disk % v.disks();
                    if v.failed_disks().len() == 2 && !v.failed_disks().contains(&disk) {
                        // Third failure must be rejected.
                        prop_assert!(v.fail_disk(disk).is_err());
                    } else {
                        v.fail_disk(disk).unwrap();
                    }
                }
                Op::Rebuild => {
                    v.rebuild().unwrap();
                    prop_assert!(corrupted || v.verify_all());
                }
                Op::ReadCheck { start, len } => {
                    // Reads are only guaranteed correct while no silent
                    // corruption is outstanding.
                    if corrupted {
                        continue;
                    }
                    let start = start % cap;
                    let len = len.min(cap - start);
                    let (bytes, _) = v.read(start, len).unwrap();
                    prop_assert_eq!(
                        &bytes[..],
                        &shadow[start * element..(start + len) * element]
                    );
                }
                Op::Corrupt { stripe, row, col } => {
                    // Only inject when healthy (scrub requires it) and only
                    // one outstanding corruption (the localizable case).
                    if corrupted || !v.failed_disks().is_empty() {
                        continue;
                    }
                    let stripe = stripe % stripes;
                    let cell = Cell::new(row % code.layout().rows(), col % v.disks());
                    v.inject_corruption(stripe, cell, 3);
                    corrupted = true;
                }
                Op::Scrub => {
                    if v.failed_disks().is_empty() {
                        let findings = v.scrub().unwrap();
                        if corrupted {
                            prop_assert_eq!(findings.len(), 1, "one injected corruption");
                        } else {
                            prop_assert!(findings.is_empty());
                        }
                        corrupted = false;
                        prop_assert!(v.verify_all());
                    }
                }
            }
        }

        // Settle: clear failures and corruption, then full verification.
        v.rebuild().unwrap();
        if corrupted {
            v.scrub().unwrap();
        }
        let (bytes, _) = v.read(0, cap).unwrap();
        prop_assert_eq!(bytes, shadow);
        prop_assert!(v.verify_all());
    }
}
