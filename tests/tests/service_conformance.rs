//! Concurrency conformance for the service front-end: N client threads
//! hammering one `Service` must leave exactly the bytes a sequential
//! `RaidVolume` replay leaves, for every registry code — and a crash in
//! the middle of a coalesced dispatch must recover to a parity-consistent,
//! untorn array through the write journal.

use std::sync::Arc;

use hv_code::HvCode;
use integration::{all_codes, payload};
use proptest::prelude::*;
use raid_array::{Fault, FaultyBackend, FileBackend, RaidVolume};
use raid_core::ArrayCode;
use raid_service::{Service, ServiceConfig, TenantClass};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 24;
const ELEMENT: usize = 16;
const STRIPES: usize = 2;

/// One client's scripted op: offset/len are relative to its private region.
#[derive(Debug, Clone)]
enum Op {
    Write { at: usize, len: usize, seed: u64 },
    Read { at: usize, len: usize },
    Flush,
}

/// Deterministic per-thread op mix from a splitmix-style stream. Regions
/// are disjoint, so any cross-thread interleaving yields the same final
/// bytes as a sequential replay.
fn ops_for(thread: usize, region: usize, seed: u64) -> Vec<Op> {
    let mut state = seed ^ (thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..OPS_PER_THREAD)
        .map(|i| {
            let len = 1 + (next() as usize) % region.min(4);
            let at = (next() as usize) % (region - len + 1);
            match next() % 5 {
                0 => Op::Read { at, len },
                1 if i == OPS_PER_THREAD / 2 => Op::Flush,
                _ => Op::Write { at, len, seed: next() },
            }
        })
        .collect()
}

/// Drives the scripted mix through a service with `THREADS` concurrent
/// clients, then returns the final volume contents.
fn run_concurrent(code: Arc<dyn ArrayCode>, scripts: &[Vec<Op>]) -> Vec<u8> {
    let vol = RaidVolume::in_memory(code, STRIPES, ELEMENT);
    let total = vol.data_elements();
    let region = total / THREADS;
    let svc = Service::new(vol, ServiceConfig::default());
    std::thread::scope(|scope| {
        for (t, script) in scripts.iter().enumerate() {
            let handle = svc.session(&format!("client{t}"), TenantClass::Mixed);
            let base = t * region;
            scope.spawn(move || {
                // Thread-local shadow of this client's region: reads
                // through the service must agree with program order.
                let mut shadow = vec![0u8; region * ELEMENT];
                for op in script {
                    match *op {
                        Op::Write { at, len, seed } => {
                            let data = payload(len * ELEMENT, seed);
                            shadow[at * ELEMENT..(at + len) * ELEMENT].copy_from_slice(&data);
                            handle.write(base + at, &data).expect("service write");
                        }
                        Op::Read { at, len } => {
                            let got = handle.read(base + at, len).expect("service read");
                            assert_eq!(
                                got,
                                &shadow[at * ELEMENT..(at + len) * ELEMENT],
                                "read through service diverged from program order"
                            );
                        }
                        Op::Flush => handle.flush().expect("service flush"),
                    }
                }
            });
        }
    });
    svc.shutdown().expect("shutdown flush");
    svc.with_volume(|v| {
        let (bytes, _) = v.read(0, total).expect("final read");
        assert!(v.verify_all(), "parity inconsistent after concurrent service run");
        bytes
    })
}

/// Replays the same scripts one op at a time on a bare volume.
fn run_sequential(code: Arc<dyn ArrayCode>, scripts: &[Vec<Op>]) -> Vec<u8> {
    let mut vol = RaidVolume::in_memory(code, STRIPES, ELEMENT);
    let total = vol.data_elements();
    let region = total / THREADS;
    for (t, script) in scripts.iter().enumerate() {
        let base = t * region;
        for op in script {
            match *op {
                Op::Write { at, len, seed } => {
                    vol.write(base + at, &payload(len * ELEMENT, seed)).expect("replay write");
                }
                Op::Read { .. } | Op::Flush => {}
            }
        }
    }
    let (bytes, _) = vol.read(0, total).expect("replay read");
    bytes
}

fn conformance(code: Arc<dyn ArrayCode>, seed: u64) {
    let name = code.name().to_string();
    let region = RaidVolume::in_memory(Arc::clone(&code), STRIPES, ELEMENT).data_elements()
        / THREADS;
    let scripts: Vec<Vec<Op>> = (0..THREADS).map(|t| ops_for(t, region, seed)).collect();
    let concurrent = run_concurrent(Arc::clone(&code), &scripts);
    let sequential = run_sequential(code, &scripts);
    assert_eq!(
        concurrent, sequential,
        "{name}: concurrent service bytes diverge from sequential replay (seed {seed})"
    );
}

#[test]
fn every_registry_code_matches_sequential_replay() {
    for p in [5usize, 13] {
        for code in all_codes(p) {
            conformance(code, 0xC0DE + p as u64);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized op mixes: the fixed-seed sweep above covers every code;
    /// here one representative code absorbs many seeds.
    #[test]
    fn random_op_mixes_match_sequential_replay(seed in any::<u64>()) {
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(5).unwrap());
        conformance(code, seed);
    }
}

/// Crash mid coalesced dispatch: clients race adjacent writes into the
/// coalescing scheduler over a file-backed volume whose backend dies at
/// op `k`. Reopening the directory runs journal recovery; the array must
/// be parity-consistent and every element either the baseline or a value
/// some client actually wrote — never torn garbage.
#[test]
fn crash_during_coalesced_dispatch_recovers_untorn() {
    let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(5).unwrap());
    let layout = code.layout();
    let dir = std::env::temp_dir().join(format!("hvraid_svc_crash_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let epd = STRIPES * layout.rows();
    let writers = 3usize;

    for k in (1u64..).step_by(7).take(24) {
        // Fresh baseline volume on disk.
        let capacity = {
            let be = FileBackend::create(&dir, layout.cols(), epd, ELEMENT).expect("create");
            let mut v = RaidVolume::new(Arc::clone(&code), STRIPES, ELEMENT, Box::new(be))
                .expect("baseline volume");
            let capacity = v.data_elements();
            let baseline = vec![0x11u8; capacity * ELEMENT];
            v.write(0, &baseline).expect("baseline");
            capacity
        };
        let region = capacity / writers;

        // Serve over a backend that crashes at op k, mid dispatch.
        {
            let be = FileBackend::open(&dir).expect("reopen");
            let faulty = FaultyBackend::new(Box::new(be), Vec::new())
                .with_faults([Fault::CrashAtOp { at_op: k }]);
            let vol = RaidVolume::new(Arc::clone(&code), STRIPES, ELEMENT, Box::new(faulty))
                .expect("crash volume");
            let svc = Service::new(vol, ServiceConfig::default());
            std::thread::scope(|scope| {
                for t in 0..writers {
                    let handle = svc.session(&format!("w{t}"), TenantClass::Writer);
                    scope.spawn(move || {
                        let fill = vec![0xA0 + t as u8; 2 * ELEMENT];
                        for i in 0..region.saturating_sub(1) {
                            // Adjacent overlapping writes: prime coalescing.
                            let _ = handle.write(t * region + i, &fill);
                            if i == region / 2 {
                                let _ = handle.flush();
                            }
                        }
                    });
                }
            });
            let _ = svc.shutdown(); // flush may fail post-crash; that's the point
        }

        // Recover: journal replay/rollback, then parity + containment.
        let be = FileBackend::open(&dir).expect("recover");
        let mut v = RaidVolume::open(Arc::clone(&code), Box::new(be), false).expect("open");
        assert!(v.verify_all(), "crash at op {k}: parity inconsistent after recovery");
        let (bytes, _) = v.read(0, capacity).expect("read after recovery");
        for at in 0..capacity {
            let elem = &bytes[at * ELEMENT..(at + 1) * ELEMENT];
            let owner = (at / region).min(writers - 1);
            let written = [0xA0 + owner as u8; ELEMENT];
            let base = [0x11u8; ELEMENT];
            assert!(
                elem == base || elem == written,
                "crash at op {k}: element {at} is torn (neither baseline nor written value)"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
