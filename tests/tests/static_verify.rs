//! Tier-1 gate for the static analyzer: every registered code must carry a
//! symbolic proof at every default prime, deliberately corrupted plans must
//! be rejected with the offending equation, the symbolic semantics must
//! agree with the runtime interpreter byte-for-byte, and the `LoweredOp`
//! audit must agree with the pipeline's actual accounting.

use proptest::prelude::*;

use integration::all_codes;
use raid_array::audit::{audit_lowered, predicted_request_set, AuditError};
use raid_array::{LoweredOp, MemBackend};
use raid_core::{decoder, ArrayCode, Cell, Stripe, XorPlan};
use raid_verify::plan_check::{prove_mds, verify_decode, verify_encode, PlanError};
use raid_verify::symbolic::SymState;

/// The headline acceptance check: all 8 codes × p ∈ {5, 7, 11, 13, 17}
/// verify — encode plans proven, MDS proven exhaustively, paper tables
/// matched where on file.
#[test]
fn check_all_registered_codes_at_default_primes() {
    let reports = raid_verify::check_all()
        .unwrap_or_else(|(code, p, e)| panic!("{code} at p={p} failed static verify: {e}"));
    assert_eq!(
        reports.len(),
        raid_verify::CODE_NAMES.len() * raid_verify::DEFAULT_PRIMES.len()
    );
    for r in &reports {
        // Every code proved every single- and double-disk pattern.
        assert_eq!(r.mds_singles, r.metrics.disks, "{} p={}", r.code, r.p);
        assert_eq!(
            r.mds_pairs,
            r.metrics.disks * (r.metrics.disks - 1) / 2,
            "{} p={}",
            r.code,
            r.p
        );
    }
}

/// Acceptance criterion: a deliberately corrupted plan — one op's source
/// list mutated — is rejected, and the failure prints the offending
/// symbolic equation (not just a boolean).
#[test]
fn corrupted_encode_plan_is_rejected_with_the_equation() {
    let code = hv_code::HvCode::new(7).unwrap();
    let layout = code.layout();

    // Rebuild the real encode plan with the first op's source list
    // truncated by one cell.
    let mut steps: Vec<(Cell, Vec<Cell>)> = layout.encode_plan().steps().collect();
    steps[0].1.pop();
    let corrupted = XorPlan::from_steps(
        layout.rows(),
        layout.cols(),
        steps.iter().map(|(t, s)| (*t, s.as_slice())),
    );

    let err = verify_encode(layout, &corrupted).unwrap_err();
    assert!(matches!(err, PlanError::WrongEquation { .. }), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("E["), "no symbolic equation in: {msg}");
    assert!(msg.contains('⊕'), "no XOR chain in: {msg}");
    assert!(msg.contains("requires"), "no expected side in: {msg}");

    // The pristine plan still proves out.
    verify_encode(layout, layout.encode_plan()).unwrap();
}

/// Same for decode: swapping one source in a real reconstruction plan must
/// surface as a wrong (or garbage-contaminated) equation on a lost cell.
#[test]
fn corrupted_decode_plan_is_rejected() {
    let code = hv_code::HvCode::new(7).unwrap();
    let layout = code.layout();
    let lost: Vec<Cell> = layout
        .cells_in_col(0)
        .into_iter()
        .chain(layout.cells_in_col(1))
        .collect();
    let plan = decoder::plan_decode(layout, &lost).unwrap();
    let good = XorPlan::compile_decode(layout, &plan);
    verify_decode(layout, &lost, &good).unwrap();

    let mut steps: Vec<(Cell, Vec<Cell>)> = good.steps().collect();
    // Replace the first step's first source with a different surviving
    // cell (one not already in the list, and not the target).
    let target = steps[0].0;
    let replacement = (0..layout.num_cells())
        .map(|i| Cell::from_index(i, layout.cols()))
        .find(|c| *c != target && !lost.contains(c) && !steps[0].1.contains(c))
        .expect("some unused survivor");
    steps[0].1[0] = replacement;
    let corrupted = XorPlan::from_steps(
        layout.rows(),
        layout.cols(),
        steps.iter().map(|(t, s)| (*t, s.as_slice())),
    );

    let err = verify_decode(layout, &lost, &corrupted).unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(err, PlanError::WrongEquation { .. } | PlanError::GarbageResidue { .. }),
        "{msg}"
    );
    assert!(msg.contains("E["), "no symbolic equation in: {msg}");
}

/// `prove_mds` must reject a layout that genuinely is not MDS (single
/// parity cannot survive double erasure), exercising the negative path of
/// the exhaustive sweep on a real `Layout`.
#[test]
fn prove_mds_rejects_a_raid5_layout() {
    use raid_core::layout::{Chain, ElementKind, Layout, ParityClass};
    let c = Cell::new;
    let kinds = vec![
        ElementKind::Data,
        ElementKind::Data,
        ElementKind::Data,
        ElementKind::Parity(ParityClass::Horizontal),
    ];
    let chains = vec![Chain {
        class: ParityClass::Horizontal,
        parity: c(0, 3),
        members: vec![c(0, 0), c(0, 1), c(0, 2)],
    }];
    let layout = Layout::new(1, 4, kinds, chains).unwrap();
    let err = prove_mds(&layout).unwrap_err();
    assert!(matches!(err, PlanError::NotDecodable { .. }), "{err}");
}

/// The `LoweredOp` auditor and the pipeline must agree: the request set the
/// pipeline commits equals the statically predicted one, and a structurally
/// broken op is refused (panic) before it can touch the backend.
#[test]
fn pipeline_agrees_with_static_audit() {
    use raid_array::IoPipeline;

    let mut pipe = IoPipeline::new(Box::new(MemBackend::new(3, 1, 8)));
    pipe.backend_mut().write(0, 0, &[7u8; 8]).unwrap();
    pipe.backend_mut().write(1, 0, &[9u8; 8]).unwrap();

    let c = Cell::new;
    let a = |disk, index| raid_array::DiskAddr { disk, index };
    let op = LoweredOp {
        reads: vec![(c(0, 0), a(0, 0)), (c(0, 1), a(1, 0))],
        plan: Some(XorPlan::from_steps(1, 3, [(c(0, 2), [c(0, 0), c(0, 1)].as_slice())])),
        data_writes: vec![],
        parity_writes: vec![(c(0, 2), a(2, 0))],
    };
    audit_lowered(&op, 1, 3, 3, Some(&[])).unwrap();

    let mut scratch = Stripe::zeroed(1, 3, 8);
    let committed = pipe.execute(&op, &mut scratch).unwrap();
    assert_eq!(committed, predicted_request_set(&op, 3));

    // A read landing outside the scratch is caught by the audit...
    let broken = LoweredOp::read_only(vec![(c(4, 0), a(0, 0))]);
    assert!(matches!(
        audit_lowered(&broken, 1, 3, 3, None),
        Err(AuditError::CellOutOfScratch { .. })
    ));
    // ...and (in debug builds) the pipeline refuses to execute it.
    #[cfg(debug_assertions)]
    {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut scratch = Stripe::zeroed(1, 3, 8);
            let _ = pipe.execute(&broken, &mut scratch);
        }));
        assert!(result.is_err(), "pipeline executed an op that failed its audit");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pins the symbolic semantics to the runtime interpreter: for every
    /// code, executing the real encode plan over a random stripe must
    /// land every cell exactly on the bytes the symbolic state predicts.
    #[test]
    fn symbolic_prediction_matches_encode_execution(
        p in prop::sample::select(vec![5usize, 7, 11]),
        code_idx in 0usize..8,
        seed in any::<u64>(),
    ) {
        let code = &all_codes(p)[code_idx];
        let layout = code.layout();
        let plan = layout.encode_plan();

        let mut sym = SymState::identity(layout.rows(), layout.cols());
        sym.execute(plan).unwrap();

        let mut initial = Stripe::for_layout(layout, 16);
        initial.fill_data_seeded(layout, seed);
        let mut actual = initial.clone();
        plan.execute(&mut actual);

        for i in 0..layout.num_cells() {
            let cell = Cell::from_index(i, layout.cols());
            prop_assert_eq!(
                sym.predict_bytes(cell, &initial),
                actual.element(cell).to_vec(),
                "{} p={p}: {} diverged", code.name(), cell
            );
        }
    }

    /// Same pin for decode plans: erase two random columns, run the real
    /// compiled reconstruction, and compare against the symbolic
    /// prediction over the erased (zeroed) stripe.
    #[test]
    fn symbolic_prediction_matches_decode_execution(
        p in prop::sample::select(vec![5usize, 7]),
        code_idx in 0usize..8,
        seed in any::<u64>(),
        cols in (0usize..64, 0usize..64),
    ) {
        let code = &all_codes(p)[code_idx];
        let layout = code.layout();
        let n = layout.cols();
        let f1 = cols.0 % n;
        let f2 = cols.1 % n;

        let mut lost: Vec<Cell> = layout.cells_in_col(f1);
        if f2 != f1 {
            lost.extend(layout.cells_in_col(f2));
        }
        let plan = decoder::plan_decode(layout, &lost).unwrap();
        let compiled = XorPlan::compile_decode(layout, &plan);
        verify_decode(layout, &lost, &compiled).unwrap();

        let mut pristine = Stripe::for_layout(layout, 16);
        pristine.fill_data_seeded(layout, seed);
        code.encode(&mut pristine);
        let mut erased = pristine.clone();
        for &c in &lost {
            erased.erase(c);
        }

        // Symbolic state over the erased stripe: `predict_bytes` treats
        // garbage vectors as zero, matching `Stripe::erase`.
        let mut sym = SymState::identity(layout.rows(), layout.cols());
        sym.execute(&compiled).unwrap();

        let mut actual = erased.clone();
        compiled.execute(&mut actual);
        prop_assert_eq!(&actual, &pristine, "{} p={p} decode wrong", code.name());

        for i in 0..layout.num_cells() {
            let cell = Cell::from_index(i, layout.cols());
            prop_assert_eq!(
                sym.predict_bytes(cell, &erased),
                actual.element(cell).to_vec(),
                "{} p={p}: {} diverged", code.name(), cell
            );
        }
    }
}
