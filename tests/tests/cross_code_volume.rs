//! End-to-end controller tests across every implemented code: write,
//! degrade, read, rebuild, verify — the full lifecycle a deployment sees.

use std::sync::Arc;

use integration::{all_codes, payload};
use raid_array::RaidVolume;

#[test]
fn full_lifecycle_every_code_every_single_disk() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        let element = 64usize;
        for failed in 0..code.layout().cols() {
            let mut v = RaidVolume::in_memory(Arc::clone(&code), 3, element);
            let data = payload(v.data_elements() * element, failed as u64);
            v.write(0, &data).unwrap();
            assert!(v.verify_all(), "{name}");

            v.fail_disk(failed).unwrap();
            let (bytes, receipt) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name}: degraded read, disk {failed}");
            assert!(receipt.total_reads() > 0);

            v.rebuild().unwrap();
            assert!(v.verify_all(), "{name}: post-rebuild parity, disk {failed}");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, data, "{name}: post-rebuild read, disk {failed}");
        }
    }
}

#[test]
fn full_lifecycle_every_code_every_disk_pair() {
    for code in all_codes(5) {
        let name = code.name().to_string();
        let element = 32usize;
        let disks = code.layout().cols();
        for f1 in 0..disks {
            for f2 in (f1 + 1)..disks {
                let mut v = RaidVolume::in_memory(Arc::clone(&code), 2, element);
                let data = payload(v.data_elements() * element, (f1 * 31 + f2) as u64);
                v.write(0, &data).unwrap();
                v.fail_disk(f1).unwrap();
                v.fail_disk(f2).unwrap();

                let (bytes, _) = v.read(0, v.data_elements()).unwrap();
                assert_eq!(bytes, data, "{name}: double-degraded read ({f1},{f2})");

                v.rebuild().unwrap();
                assert!(v.verify_all(), "{name}: rebuild ({f1},{f2})");
                let (bytes, _) = v.read(0, v.data_elements()).unwrap();
                assert_eq!(bytes, data, "{name}: post-rebuild ({f1},{f2})");
            }
        }
    }
}

#[test]
fn interleaved_writes_and_failures() {
    // Write, fail, rebuild, write again, fail a different pair, rebuild —
    // state must stay consistent across rounds.
    for code in all_codes(7) {
        let name = code.name().to_string();
        let element = 16usize;
        let mut v = RaidVolume::in_memory(Arc::clone(&code), 4, element);
        let mut shadow = vec![0u8; v.data_elements() * element];

        let rounds: &[(usize, usize, usize)] = &[(0, 1, 5), (2, 3, 11), (1, 4, 3)];
        for &(f1, f2, write_at) in rounds {
            let chunk = payload(7 * element, (f1 + f2 + write_at) as u64);
            v.write(write_at, &chunk).unwrap();
            shadow[write_at * element..(write_at + 7) * element].copy_from_slice(&chunk);

            v.fail_disk(f1).unwrap();
            v.fail_disk(f2).unwrap();
            v.rebuild().unwrap();

            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, shadow, "{name}: round ({f1},{f2})");
        }
    }
}

#[test]
fn degraded_writes_across_all_codes() {
    // Write while one or two disks are down, rebuild, and verify the
    // degraded writes landed.
    for code in all_codes(7) {
        let name = code.name().to_string();
        let element = 16usize;
        for failures in [vec![0usize], vec![1, 3]] {
            let mut v = RaidVolume::in_memory(Arc::clone(&code), 3, element);
            let mut shadow = payload(v.data_elements() * element, 1);
            v.write(0, &shadow.clone()).unwrap();
            for &d in &failures {
                v.fail_disk(d).unwrap();
            }

            let patch = payload(11 * element, 2);
            v.write(4, &patch).unwrap();
            shadow[4 * element..15 * element].copy_from_slice(&patch);

            // Visible immediately through degraded reads…
            let (now, _) = v.read(4, 11).unwrap();
            assert_eq!(now, patch, "{name} {failures:?}: degraded visibility");

            // …and still there after rebuilding the failed disks.
            v.rebuild().unwrap();
            assert!(v.verify_all(), "{name} {failures:?}");
            let (bytes, _) = v.read(0, v.data_elements()).unwrap();
            assert_eq!(bytes, shadow, "{name} {failures:?}: after rebuild");
        }
    }
}

#[test]
fn rotation_lifecycle() {
    for code in all_codes(7) {
        let name = code.name().to_string();
        let element = 16usize;
        let mut v = RaidVolume::with_rotation(Arc::clone(&code), 5, element, true);
        let data = payload(v.data_elements() * element, 77);
        v.write(0, &data).unwrap();
        v.fail_disk(2).unwrap();
        v.fail_disk(5).unwrap();
        let (bytes, _) = v.read(0, v.data_elements()).unwrap();
        assert_eq!(bytes, data, "{name}: rotated degraded read");
        v.rebuild().unwrap();
        assert!(v.verify_all(), "{name}: rotated rebuild");
    }
}
