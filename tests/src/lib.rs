//! Shared fixtures for the cross-crate integration tests.

use std::sync::Arc;

use hv_code::HvCode;
use raid_baselines::{EvenOddCode, HCode, HdpCode, LiberationCode, PCode, RdpCode, XCode};
use raid_core::ArrayCode;

/// Every XOR array code in the workspace at prime `p`.
///
/// # Panics
///
/// Panics if `p` is not a prime ≥ 5.
pub fn all_codes(p: usize) -> Vec<Arc<dyn ArrayCode>> {
    vec![
        Arc::new(HvCode::new(p).expect("prime p >= 5")) as Arc<dyn ArrayCode>,
        Arc::new(RdpCode::new(p).expect("prime")),
        Arc::new(EvenOddCode::new(p).expect("prime")),
        Arc::new(XCode::new(p).expect("prime")),
        Arc::new(HCode::new(p).expect("prime p >= 5")),
        Arc::new(HdpCode::new(p).expect("prime p >= 5")),
        Arc::new(PCode::new(p).expect("prime")),
        Arc::new(LiberationCode::new(p).expect("prime")),
    ]
}

/// Deterministic payload bytes.
pub fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u8
        })
        .collect()
}
