# Convenience targets for the HV Code reproduction workspace.

CARGO ?= cargo

.PHONY: build test bench bench-smoke chaos-smoke fleet-smoke threads-smoke tsan-smoke serve-smoke lint miri test-kernel-audit verify clean

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# Full benchmark run (slow; regenerates BENCH_*.json at the repo root).
bench:
	$(CARGO) bench -p raid-bench

# One iteration per benchmark: verifies every bench target runs end to end
# (and that the BENCH_*.json files are emitted) in seconds, not minutes.
# Then the optimizer regression gate: the plan optimizer must keep saving
# at least 10% of the specification's encode XOR reads for the cascaded
# codes (RDP, HDP, EVENODD) at p = 13, and must never cost any code reads
# (the --min-savings 0 sweep; `check_code` separately proves the cached
# plan never reads more than the cascaded compile). The update bench also
# gates write coalescing: the Table-II trace with the stripe cache on
# must cost >=30% less total element I/O than uncached (BENCH_update.json
# records the pair), and the skew bench writes BENCH_skew.json.
bench-smoke:
	RAID_BENCH_SMOKE=1 $(CARGO) bench -p raid-bench
	$(CARGO) run -q --release -p hvraid -- lint --code rdp --p 13 --min-savings 10
	$(CARGO) run -q --release -p hvraid -- lint --code hdp --p 13 --min-savings 10
	$(CARGO) run -q --release -p hvraid -- lint --code evenodd --p 13 --min-savings 10
	$(CARGO) run -q --release -p hvraid -- lint --p 13 --min-savings 0

# Fixed-seed chaos campaigns over both backends: randomized fault
# injection (dead disks, transients, latent sectors, torn writes) plus
# crash-at-every-journal-point sweeps, including crashes under a dirty
# write-back cache mid-coalesced-flush, verified against a shadow model.
# Deterministic and fast (<30 s); failures print the reproducing seed.
chaos-smoke:
	$(CARGO) run -q --release -p hvraid -- chaos --seed 1 --episodes 25
	$(CARGO) run -q --release -p hvraid -- chaos --seed 2 --episodes 25 --backend mem --spares 0
	$(CARGO) run -q --release -p hvraid -- chaos --seed 3 --episodes 25 --threads 4 --stripes 8

# Seeded fleet reliability campaign: the same small fleet twice, with
# the JSON reports required byte-identical (the harness's determinism
# contract), zero data loss at the default-ish settings, and the pinned
# report schema version. Plus the QoS pinned test: the adaptive rebuild
# throttle must bound foreground p99 inflation vs a flat-out rebuild.
fleet-smoke:
	$(CARGO) run -q --release -p hvraid -- fleet --volumes 12 --hours 96 --seed 5 --stripes 8 --element 16 --json > /tmp/hvraid-fleet-a.json
	$(CARGO) run -q --release -p hvraid -- fleet --volumes 12 --hours 96 --seed 5 --stripes 8 --element 16 --json > /tmp/hvraid-fleet-b.json
	cmp /tmp/hvraid-fleet-a.json /tmp/hvraid-fleet-b.json
	grep -q '"schema_version": 1' /tmp/hvraid-fleet-a.json
	grep -q '"data_loss_events": 0' /tmp/hvraid-fleet-a.json
	rm -f /tmp/hvraid-fleet-a.json /tmp/hvraid-fleet-b.json
	$(CARGO) test -q -p integration --test fleet_qos
	$(CARGO) test -q -p integration --test reliability_invariants

# Backend conformance under the partitioned executor: the same suite at
# 2 and 4 worker threads (HV_THREADS pins the volume's partition count
# and the file backend's I/O pool). On a 1-core host this degenerates to
# the serial path — the point is that the answers never change.
threads-smoke:
	HV_THREADS=2 $(CARGO) test -q -p integration --test backend_conformance
	HV_THREADS=4 $(CARGO) test -q -p integration --test backend_conformance
	$(CARGO) test -q -p integration --test partition_determinism

# ThreadSanitizer over the partitioned-executor determinism suite.
# -Zsanitizer=thread needs a nightly toolchain with rust-src; skipped with
# a notice when unavailable (e.g. offline containers) — the exhaustive
# schedule models (`hvraid lint --schedules`) still prove the cursor,
# ledger-merge, and disk-queue protocols race-free without it.
tsan-smoke:
	@if $(CARGO) +nightly --version >/dev/null 2>&1 && \
		rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src (installed)"; then \
		RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
			$(CARGO) +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
			-q -p integration --test partition_determinism || exit 1; \
	else \
		echo "tsan-smoke: nightly + rust-src unavailable, skipping (see 'hvraid lint --schedules')"; \
	fi

# End-to-end smoke of the service front-end: `hvraid serve` on a temp
# unix socket over a file-backed volume, a scripted client proving byte
# identity through the protocol (EXPECT assertions), a Prometheus stats
# scrape, a clean SHUTDOWN flush, then fsck must find the on-disk array
# parity-consistent.
serve-smoke:
	sh scripts/serve_smoke.sh

# Static analysis gate: warnings-as-errors clippy across every target,
# the (gated) miri pass over the unsafe kernels, then the symbolic
# verifier proving every registered code at every default prime — now
# including the partition-hazard, crash-journal, and schedule-exploration
# proofs (itemized by the extra flags).
lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings
	$(MAKE) miri
	$(CARGO) run -q -p hvraid -- lint --all --hazards --journal --schedules

# Miri over the unsafe XOR kernels, time-boxed. Skipped with a notice when
# the toolchain has no miri component (e.g. offline containers) — the
# kernel_audit scalar-shadow mode and debug-assert bounds checks still
# cover the kernels without it.
miri:
	@if $(CARGO) +nightly miri --version >/dev/null 2>&1; then \
		MIRIFLAGS=-Zmiri-disable-isolation timeout 600 \
			$(CARGO) +nightly miri test -p raid-math xor || exit 1; \
	else \
		echo "miri: nightly component unavailable, skipping (see 'make test-kernel-audit')"; \
	fi

# Re-runs the kernel test suite with every dispatched SIMD call shadowed
# by the scalar reference implementation and byte-compared.
test-kernel-audit:
	RUSTFLAGS="--cfg kernel_audit" $(CARGO) test -q -p raid-math

# The pre-merge gate: release build, full test suite, the static-analysis
# lint gate (clippy + miri + symbolic proofs), then a bench smoke run that
# refreshes BENCH_degraded.json (and the other BENCH_*.json files) with
# current degraded-read throughput numbers.
verify:
	$(CARGO) build --release
	$(CARGO) test -q
	$(MAKE) lint
	$(MAKE) threads-smoke
	$(MAKE) tsan-smoke
	$(MAKE) chaos-smoke
	$(MAKE) fleet-smoke
	$(MAKE) serve-smoke
	$(MAKE) bench-smoke

clean:
	$(CARGO) clean
