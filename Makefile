# Convenience targets for the HV Code reproduction workspace.

CARGO ?= cargo

.PHONY: build test bench bench-smoke lint verify clean

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# Full benchmark run (slow; regenerates BENCH_*.json at the repo root).
bench:
	$(CARGO) bench -p raid-bench

# One iteration per benchmark: verifies every bench target runs end to end
# (and that the BENCH_*.json files are emitted) in seconds, not minutes.
bench-smoke:
	RAID_BENCH_SMOKE=1 $(CARGO) bench -p raid-bench

lint:
	$(CARGO) clippy --workspace --all-targets

# The pre-merge gate: release build, full test suite, warnings-as-errors
# lint, then a bench smoke run that refreshes BENCH_degraded.json (and the
# other BENCH_*.json files) with current degraded-read throughput numbers.
verify:
	$(CARGO) build --release
	$(CARGO) test -q
	$(CARGO) clippy -- -D warnings
	RAID_BENCH_SMOKE=1 $(CARGO) bench -p raid-bench

clean:
	$(CARGO) clean
