# Convenience targets for the HV Code reproduction workspace.

CARGO ?= cargo

.PHONY: build test bench bench-smoke lint clean

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# Full benchmark run (slow; regenerates BENCH_encode.json at the repo root).
bench:
	$(CARGO) bench -p raid-bench

# One iteration per benchmark: verifies every bench target runs end to end
# (and that BENCH_encode.json is emitted) in seconds, not minutes.
bench-smoke:
	RAID_BENCH_SMOKE=1 $(CARGO) bench -p raid-bench

lint:
	$(CARGO) clippy --workspace --all-targets

clean:
	$(CARGO) clean
