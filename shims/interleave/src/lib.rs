//! Bounded exhaustive interleaving exploration — a tiny, offline,
//! loom-shaped model checker.
//!
//! A [`Model`] describes a finite concurrent protocol as a cloneable
//! state plus per-thread atomic steps. [`explore`] enumerates **every**
//! interleaving of those steps by depth-first search over the scheduler's
//! choices, checking a per-step [`Model::invariant`] along the way and
//! [`Model::check_final`] at the end of every complete schedule. A
//! violation comes back with the exact schedule (the sequence of thread
//! choices) that produced it, so a failure is a replayable counterexample
//! rather than a flaky repro.
//!
//! The granularity contract is the whole game: each `step` must be one
//! *atomic* transition of the real protocol (one `fetch_add`, one
//! lock-take, one queue pop). Anything the real code does non-atomically
//! must be split into several steps, otherwise the model hides exactly
//! the interleavings it was built to explore.
//!
//! This is a shim in the same spirit as the workspace's `rand`/`proptest`
//! stand-ins: the build environment has no registry access, so the
//! upstream `loom` cannot be used. Unlike loom it does not model weak
//! memory — every step is sequentially consistent — which is sound here
//! because the protocols under test synchronize through `Mutex`es and
//! RMW atomics (see the callers in `raid_verify::schedules` for the
//! per-protocol justification).

/// A finite concurrent protocol: cloneable state, per-thread step
/// functions, and the properties to check.
pub trait Model: Clone {
    /// Number of threads in the model. Must be constant over a run.
    fn threads(&self) -> usize;

    /// True when `thread` has no further steps from this state.
    fn done(&self, thread: usize) -> bool;

    /// Executes `thread`'s next atomic step.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated property, failing the
    /// exploration with the current schedule as the counterexample.
    fn step(&mut self, thread: usize) -> Result<(), String>;

    /// Checked after every step of every schedule. Defaults to no check.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    fn invariant(&self) -> Result<(), String> {
        Ok(())
    }

    /// Checked once per complete schedule (all threads done).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated postcondition.
    fn check_final(&self) -> Result<(), String>;
}

/// Statistics of a completed exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Complete schedules (maximal interleavings) enumerated.
    pub schedules: u64,
    /// Steps in the longest schedule.
    pub max_depth: usize,
}

/// Why an exploration stopped without proving the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// A step, invariant, or final check failed under `schedule` (the
    /// sequence of thread indices the scheduler picked).
    Violation {
        /// The counterexample schedule, replayable via [`replay`].
        schedule: Vec<usize>,
        /// The failed property, as reported by the model.
        detail: String,
    },
    /// The model has more than `limit` complete schedules — it is too big
    /// to check exhaustively and must be shrunk, not sampled.
    Budget {
        /// The configured schedule budget.
        limit: u64,
    },
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Violation { schedule, detail } => {
                write!(f, "schedule {schedule:?}: {detail}")
            }
            ExploreError::Budget { limit } => {
                write!(f, "model exceeds the {limit}-schedule exhaustiveness budget")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// Exhaustively explores every interleaving of `initial`'s threads, up to
/// `limit` complete schedules.
///
/// # Errors
///
/// [`ExploreError::Violation`] carries the first counterexample schedule;
/// [`ExploreError::Budget`] means the model is too large to enumerate
/// (nothing was proven — shrink the model).
pub fn explore<M: Model>(initial: &M, limit: u64) -> Result<Explored, ExploreError> {
    let mut stats = Explored { schedules: 0, max_depth: 0 };
    let mut schedule = Vec::new();
    dfs(initial, limit, &mut schedule, &mut stats)?;
    Ok(stats)
}

fn dfs<M: Model>(
    state: &M,
    limit: u64,
    schedule: &mut Vec<usize>,
    stats: &mut Explored,
) -> Result<(), ExploreError> {
    let mut any_runnable = false;
    for t in 0..state.threads() {
        if state.done(t) {
            continue;
        }
        any_runnable = true;
        let mut next = state.clone();
        schedule.push(t);
        next.step(t)
            .and_then(|()| next.invariant())
            .map_err(|detail| ExploreError::Violation { schedule: schedule.clone(), detail })?;
        dfs(&next, limit, schedule, stats)?;
        schedule.pop();
    }
    if !any_runnable {
        stats.schedules += 1;
        if stats.schedules > limit {
            return Err(ExploreError::Budget { limit });
        }
        stats.max_depth = stats.max_depth.max(schedule.len());
        state
            .check_final()
            .map_err(|detail| ExploreError::Violation { schedule: schedule.clone(), detail })?;
    }
    Ok(())
}

/// Replays one explicit schedule against `initial` — the debugging
/// companion to a [`ExploreError::Violation`] counterexample. Runs the
/// listed thread choices, then lets every thread run to completion in
/// index order, and returns the final state (or the first property
/// failure).
///
/// # Errors
///
/// Returns the model's failure description, exactly as `explore` would.
pub fn replay<M: Model>(initial: &M, schedule: &[usize]) -> Result<M, String> {
    let mut state = initial.clone();
    for &t in schedule {
        if state.done(t) {
            return Err(format!("schedule picks finished thread {t}"));
        }
        state.step(t)?;
        state.invariant()?;
    }
    for t in 0..state.threads() {
        while !state.done(t) {
            state.step(t)?;
            state.invariant()?;
        }
    }
    state.check_final()?;
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a "non-atomic" counter via a separate
    /// read step and write step — the classic lost-update race.
    #[derive(Clone)]
    struct LostUpdate {
        counter: u32,
        /// Per-thread: (steps_taken, value_read).
        threads: Vec<(u8, u32)>,
    }

    impl Model for LostUpdate {
        fn threads(&self) -> usize {
            self.threads.len()
        }
        fn done(&self, t: usize) -> bool {
            self.threads[t].0 >= 2
        }
        fn step(&mut self, t: usize) -> Result<(), String> {
            match self.threads[t].0 {
                0 => self.threads[t].1 = self.counter,
                _ => self.counter = self.threads[t].1 + 1,
            }
            self.threads[t].0 += 1;
            Ok(())
        }
        fn check_final(&self) -> Result<(), String> {
            if self.counter == self.threads.len() as u32 {
                Ok(())
            } else {
                Err(format!("lost update: counter {} != {}", self.counter, self.threads.len()))
            }
        }
    }

    #[test]
    fn finds_the_lost_update_race() {
        let m = LostUpdate { counter: 0, threads: vec![(0, 0); 2] };
        let err = explore(&m, 1_000).unwrap_err();
        let ExploreError::Violation { schedule, detail } = err else {
            panic!("expected a violation")
        };
        assert!(detail.contains("lost update"), "{detail}");
        // The counterexample replays to the same failure.
        assert!(replay(&m, &schedule).is_err());
    }

    /// The same protocol with an atomic increment (one step) is race-free
    /// and the explorer proves it across all interleavings.
    #[derive(Clone)]
    struct AtomicAdd {
        counter: u32,
        done: Vec<bool>,
    }

    impl Model for AtomicAdd {
        fn threads(&self) -> usize {
            self.done.len()
        }
        fn done(&self, t: usize) -> bool {
            self.done[t]
        }
        fn step(&mut self, t: usize) -> Result<(), String> {
            self.counter += 1;
            self.done[t] = true;
            Ok(())
        }
        fn check_final(&self) -> Result<(), String> {
            if self.counter == self.done.len() as u32 {
                Ok(())
            } else {
                Err("atomic add lost a count".to_string())
            }
        }
    }

    #[test]
    fn proves_the_atomic_version_and_counts_schedules() {
        let m = AtomicAdd { counter: 0, done: vec![false; 3] };
        let stats = explore(&m, 1_000).unwrap();
        // 3 single-step threads: 3! = 6 interleavings, depth 3.
        assert_eq!(stats, Explored { schedules: 6, max_depth: 3 });
    }

    #[test]
    fn budget_overflow_is_an_error_not_a_sample() {
        let m = AtomicAdd { counter: 0, done: vec![false; 3] };
        assert_eq!(explore(&m, 5), Err(ExploreError::Budget { limit: 5 }));
    }

    #[test]
    fn replay_rejects_a_schedule_picking_finished_threads() {
        let m = AtomicAdd { counter: 0, done: vec![false; 2] };
        assert!(replay(&m, &[0, 0]).is_err());
    }
}
