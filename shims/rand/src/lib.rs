//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the tiny slice of `rand`'s API it actually uses: a seedable `StdRng`,
//! `Rng::gen` for primitive types, and `Rng::gen_range` over half-open and
//! inclusive integer ranges. The generator is xoshiro256** seeded through
//! SplitMix64 — statistically solid for simulation workloads, deterministic
//! per seed, and *not* stream-compatible with upstream `rand` (nothing in
//! the workspace depends on upstream streams; tests pin this crate's own).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range a value can be drawn from — `a..b` and `a..=b`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling methods, blanket-implemented for every core
/// generator.
pub trait Rng: RngCore {
    /// Uniform value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    /// Fills a byte slice.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude`-alike for glob imports.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn unit_interval_and_rough_uniformity() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let head = (0..n).filter(|_| r.gen_range(0usize..10) == 0).count();
        let share = head as f64 / n as f64;
        assert!((share - 0.1).abs() < 0.01, "share {share}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
