//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread API used by this workspace is provided, and it is
//! a thin veneer over `std::thread::scope` (stable since Rust 1.63). The
//! call-site shape matches crossbeam 0.8: `scope(|s| ...)` returns a
//! `Result`, and `s.spawn(|_| ...)` hands the closure a scope reference.
//! Unlike crossbeam, a panicking child propagates when the scope exits
//! (std semantics), so `scope` itself only returns `Ok` here.

pub mod thread {
    /// Child-thread panic payload list, kept for call-site compatibility
    /// with crossbeam's `scope` signature.
    pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

    /// Spawning handle passed to [`scope`]'s closure and to child closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further children, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a thread spawned via [`Scope::spawn`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, yielding its result or its panic
        /// payload.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all children are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn mutable_chunks_across_threads() {
        let mut bufs = [0u8; 8];
        thread::scope(|s| {
            for chunk in bufs.chunks_mut(4) {
                s.spawn(move |_| chunk.fill(7));
            }
        })
        .unwrap();
        assert!(bufs.iter().all(|&b| b == 7));
    }
}
