//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the call-site API of the benches in this workspace — groups,
//! [`Throughput`], [`BenchmarkId`], `bench_function` / `bench_with_input`,
//! `Bencher::iter`, [`criterion_group!`] / [`criterion_main!`] — on top of a
//! plain wall-clock harness: per benchmark it warms up, splits the
//! measurement window into fixed-size samples, and reports the median
//! sample's nanoseconds per iteration plus derived throughput.
//!
//! Two extensions the real criterion does not have, used by the repro
//! harness:
//!
//! * every finished measurement is pushed into a process-global list,
//!   readable via [`take_collected`], so a bench binary can emit a
//!   machine-readable summary (`BENCH_encode.json`);
//! * setting `RAID_BENCH_SMOKE=1` collapses warmup and sampling to a single
//!   iteration — the `make bench-smoke` fast path.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name, e.g. `encode_stripe`.
    pub group: String,
    /// Benchmark id within the group (`function/param`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations measured.
    pub iters: u64,
    /// Bytes processed per iteration, when the group declared
    /// [`Throughput::Bytes`].
    pub bytes_per_iter: Option<u64>,
}

impl BenchResult {
    /// Throughput in bytes/second, when byte throughput was declared.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        self.bytes_per_iter.map(|b| b as f64 * 1e9 / self.ns_per_iter)
    }
}

static COLLECTED: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every measurement recorded so far in this process.
pub fn take_collected() -> Vec<BenchResult> {
    std::mem::take(&mut COLLECTED.lock().expect("collector poisoned"))
}

fn record(result: BenchResult) {
    COLLECTED.lock().expect("collector poisoned").push(result);
}

/// True when `RAID_BENCH_SMOKE=1`: run each benchmark exactly once.
pub fn smoke_mode() -> bool {
    std::env::var("RAID_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// Units for a group's per-iteration work, for derived throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// `function/parameter` benchmark naming.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{}/{}", function.into(), parameter) }
    }

    /// An id with no parameter part.
    pub fn from_name(function: impl Into<String>) -> Self {
        BenchmarkId { full: function.into() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId::from_name(s)
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId::from_name(s)
    }
}

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_count: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(60),
            sample_count: 11,
        }
    }
}

impl Criterion {
    /// Overrides the per-benchmark measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A named group of related benchmarks sharing a throughput declaration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for derived throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion);
        f(&mut b);
        self.finish_one(id, b);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion);
        f(&mut b, input);
        self.finish_one(id, b);
        self
    }

    /// Ends the group (kept for API parity; results are recorded eagerly).
    pub fn finish(self) {}

    fn finish_one(&self, id: BenchmarkId, b: Bencher) {
        let Some((ns_per_iter, iters)) = b.outcome else {
            eprintln!("{}/{}: no measurement (iter was never called)", self.name, id.full);
            return;
        };
        let bytes = match self.throughput {
            Some(Throughput::Bytes(n)) => Some(n),
            _ => None,
        };
        let result = BenchResult {
            group: self.name.clone(),
            id: id.full,
            ns_per_iter,
            iters,
            bytes_per_iter: bytes,
        };
        match result.bytes_per_sec() {
            Some(bps) => eprintln!(
                "{:<48} {:>12.1} ns/iter {:>10.1} MiB/s ({} iters)",
                format!("{}/{}", result.group, result.id),
                result.ns_per_iter,
                bps / (1024.0 * 1024.0),
                result.iters
            ),
            None => eprintln!(
                "{:<48} {:>12.1} ns/iter ({} iters)",
                format!("{}/{}", result.group, result.id),
                result.ns_per_iter,
                result.iters
            ),
        }
        record(result);
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_count: u32,
    outcome: Option<(f64, u64)>,
}

impl Bencher {
    fn new(c: &Criterion) -> Self {
        Bencher {
            measurement_time: c.measurement_time,
            warm_up_time: c.warm_up_time,
            sample_count: c.sample_count,
            outcome: None,
        }
    }

    /// Measures `routine`: warmup to size the samples, then
    /// `sample_count` equal samples; the median sample yields ns/iter.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if smoke_mode() {
            let t0 = Instant::now();
            black_box(routine());
            let ns = t0.elapsed().as_nanos().max(1) as f64;
            self.outcome = Some((ns, 1));
            return;
        }

        // Warmup: run until the warmup window elapses, counting iterations
        // to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let per_sample_ns =
            self.measurement_time.as_nanos() as f64 / self.sample_count as f64;
        let iters_per_sample = (per_sample_ns / est_ns).ceil().max(1.0) as u64;

        let mut samples = Vec::with_capacity(self.sample_count as usize);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            total_iters += iters_per_sample;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        self.outcome = Some((median.max(1.0), total_iters));
    }
}

/// Bundles benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_collects() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.warm_up_time = Duration::from_millis(1);
        let mut group = c.benchmark_group("unit");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 32), &32u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        let collected = take_collected();
        assert_eq!(collected.len(), 2);
        assert!(collected.iter().any(|r| r.id == "sum/32"));
        for r in &collected {
            assert!(r.ns_per_iter > 0.0);
            assert!(r.bytes_per_sec().unwrap() > 0.0);
        }
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("enc", 17).full, "enc/17");
        assert_eq!(BenchmarkId::from_name("solo").full, "solo");
    }
}
