//! Case-running machinery behind the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps offline CI fast while still
        // exercising the ragged edges (tests that need more set it).
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` precondition failed — skip, don't count.
    Reject(String),
    /// `prop_assert!` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result alias matching upstream's `TestCaseResult`.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The generator handed to strategies.
///
/// Seeding is deterministic per test name (FNV-1a of the name), so a failure
/// reproduces on re-run; set `PROPTEST_SEED` to explore other streams.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Deterministic generator for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h = h.wrapping_add(extra.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        TestRng { rng: StdRng::seed_from_u64(h) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore as _;

    #[test]
    fn per_test_determinism() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(TestRng::for_test("x").rng.next_u64(), c.rng.next_u64());
    }

    #[test]
    fn config_defaults() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
