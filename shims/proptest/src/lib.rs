//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] test macro,
//! `prop_assert*` / `prop_assume!`, integer-range and `any::<T>()`
//! strategies, `Just`, tuples, `prop::collection::vec`,
//! `prop::sample::select`, `.prop_map`, and [`prop_oneof!`].
//!
//! Semantics deliberately kept from upstream: each test runs
//! `ProptestConfig::cases` random cases, `prop_assume!` rejects a case
//! without counting it, and a failing case panics with the generated inputs
//! in the message. Deliberately dropped: shrinking (failures report the raw
//! inputs; cases are deterministic per test name, so failures reproduce),
//! persistence files, and fork mode.

pub mod strategy;
pub mod test_runner;

/// `prop::collection` — sized collections of sub-strategy values.
pub mod collection {
    use crate::strategy::{SizeBounds, Strategy, VecStrategy};

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// `prop::sample` — choosing among explicit values.
pub mod sample {
    use crate::strategy::Select;

    /// Strategy drawing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `options` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: no options");
        Select { options }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Fails the current test case (with `format!`-style context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!(left == right)` with better diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!(left != right)` with better diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Discards the current case (not counted toward `cases`) when the inputs
/// don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(20).max(1000);
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "{}: too many prop_assume! rejections ({} attempts for {} cases)",
                        stringify!($name), __attempts, __config.cases
                    );
                    let __vals = ($(
                        $crate::strategy::Strategy::generate(&$strat, &mut __rng),
                    )+);
                    let __inputs = format!("{:?}", __vals);
                    let ($($pat,)+) = __vals;
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "{} failed on case {} with inputs {}:\n{}",
                                stringify!($name), __accepted, __inputs, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}
