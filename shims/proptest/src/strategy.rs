//! Value-generation strategies.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy handle.
pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

/// Object-safe subset of [`Strategy`].
pub trait DynStrategy<V> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies — [`crate::prop_oneof!`]'s engine.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof!: no arms");
        Union { arms }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// See [`crate::sample::select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone + fmt::Debug> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone + fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.rng.gen_range(0..self.options.len())].clone()
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Length bounds accepted by [`crate::collection::vec`].
pub trait SizeBounds {
    /// `(min, max)` inclusive.
    fn bounds(&self) -> (usize, usize);
}

impl SizeBounds for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeBounds for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform values of the whole type — `any::<T>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-range uniform strategy.
pub trait ArbitraryValue: fmt::Debug + Sized {
    /// Draws one uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-unit")
    }

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (-4i64..=4).generate(&mut r);
            assert!((-4..=4).contains(&w));
            let _b: bool = any::<bool>().generate(&mut r);
        }
    }

    #[test]
    fn map_select_vec_union() {
        let mut r = rng();
        let doubled = (1usize..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut r) % 2, 0);
        }
        let sel = crate::sample::select(vec![7usize, 11, 13]);
        for _ in 0..100 {
            assert!([7, 11, 13].contains(&sel.generate(&mut r)));
        }
        let v = crate::collection::vec(0u8..=255, 0..4);
        for _ in 0..100 {
            assert!(v.generate(&mut r).len() < 4);
        }
        let u = crate::prop_oneof![Just(1usize), Just(2usize), 5usize..7];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.generate(&mut r));
        }
        assert!(seen.contains(&1) && seen.contains(&2));
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let t = (0usize..10, 0usize..10, any::<u64>());
        let (a, b, _s) = t.generate(&mut r);
        assert!(a < 10 && b < 10);
    }
}
